#include "env/backtest.h"

#include <cmath>

#include "common/check.h"
#include "math/autograd.h"
#include "obs/telemetry.h"

namespace cit::env {

std::vector<double> TradingAgent::DecideWeights(
    const market::PricePanel& panel, int64_t day) {
  market::InMemorySource source(&panel);
  const market::PanelView view(&source);
  return DecideWeights(view, day);
}

BacktestResult RunBacktest(TradingAgent& agent,
                           const market::PanelView& view,
                           const EnvConfig& config) {
  PortfolioEnv env(view, config);
  agent.Reset();

  BacktestResult result;
  result.agent_name = agent.name();
  result.wealth.push_back(1.0);
  result.days.push_back(env.current_day());
  // A backtest only ever reads policy outputs, so the whole evaluation loop
  // runs graph-free: model forwards inside DecideWeights allocate no tape
  // and recycle their temporaries through the per-thread arena.
  ag::NoGradGuard no_grad;
  while (!env.done()) {
    CIT_OBS_SPAN("backtest.step");
    CIT_OBS_COUNT("backtest.steps", 1);
    std::vector<double> weights =
        agent.DecideWeights(view, env.current_day());
    // A single bad action (NaN/negative/unnormalized) from one agent must
    // degrade gracefully, not CHECK-abort a comparison run covering every
    // baseline: repair it onto the simplex and count the repair. A size
    // mismatch stays fatal — that is a wiring bug, not a bad action.
    if (!IsValidPortfolio(weights)) {
      weights = NormalizeToSimplex(std::move(weights));
      ++result.repaired_steps;
      CIT_OBS_COUNT("backtest.repaired_steps", 1);
    }
    const StepResult step = env.Step(weights);
    result.turnover += step.turnover;
    result.wealth.push_back(env.wealth());
    result.days.push_back(env.current_day());
    result.daily_returns.push_back(std::exp(step.reward) - 1.0);
  }
  result.metrics = ComputeMetrics(result.wealth);
  CIT_OBS_GAUGE("backtest.turnover", result.turnover);
  return result;
}

BacktestResult RunBacktest(TradingAgent& agent,
                           const market::PricePanel& panel,
                           const EnvConfig& config) {
  market::InMemorySource source(&panel);
  return RunBacktest(agent, market::PanelView(&source), config);
}

BacktestResult RunTestBacktest(TradingAgent& agent,
                               const market::PanelView& view,
                               int64_t window, double transaction_cost) {
  CIT_CHECK_GT(view.train_end(), window);
  EnvConfig config;
  config.window = window;
  config.transaction_cost = transaction_cost;
  config.start_day = view.train_end();
  config.end_day = view.num_days() - 1;
  return RunBacktest(agent, view, config);
}

BacktestResult RunTestBacktest(TradingAgent& agent,
                               const market::PricePanel& panel,
                               int64_t window, double transaction_cost) {
  market::InMemorySource source(&panel);
  return RunTestBacktest(agent, market::PanelView(&source), window,
                         transaction_cost);
}

}  // namespace cit::env
