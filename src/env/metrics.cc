#include "env/metrics.h"

#include <cmath>
#include <sstream>

#include "common/check.h"

namespace cit::env {

std::vector<double> DailyReturns(const std::vector<double>& wealth) {
  CIT_CHECK_GE(wealth.size(), 2u);
  std::vector<double> returns(wealth.size() - 1);
  for (size_t t = 1; t < wealth.size(); ++t) {
    CIT_CHECK_GT(wealth[t - 1], 0.0);
    returns[t - 1] = wealth[t] / wealth[t - 1] - 1.0;
  }
  return returns;
}

double MaxDrawdown(const std::vector<double>& wealth) {
  double peak = wealth.empty() ? 0.0 : wealth[0];
  double mdd = 0.0;
  for (double s : wealth) {
    if (s > peak) peak = s;
    if (peak > 0.0) mdd = std::max(mdd, (peak - s) / peak);
  }
  return mdd;
}

PerformanceMetrics ComputeMetrics(const std::vector<double>& wealth) {
  CIT_CHECK_GE(wealth.size(), 2u);
  PerformanceMetrics m;
  const std::vector<double> r = DailyReturns(wealth);
  m.accumulative_return = wealth.back() / wealth.front() - 1.0;

  double mean = 0.0;
  for (double v : r) mean += v;
  mean /= static_cast<double>(r.size());
  double var = 0.0;
  for (double v : r) var += (v - mean) * (v - mean);
  var = r.size() > 1 ? var / static_cast<double>(r.size() - 1) : 0.0;
  const double std_daily = std::sqrt(var);

  m.annualized_vol = std_daily * std::sqrt(kTradingDaysPerYear);
  // Annualizing a very short curve explodes: for a 2-point curve years is
  // 1/252, so pow(total, 252) turns a mild daily move into an astronomical
  // (or overflowing) rate, which then poisons Calmar. Floor the horizon at
  // one trading month so a short curve is extrapolated at most ~12x, and
  // exponentiate in log space so the guarded result stays finite.
  const double years =
      std::max(static_cast<double>(r.size()), kMinAnnualizationDays) /
      kTradingDaysPerYear;
  const double total = wealth.back() / wealth.front();
  m.annualized_return =
      total > 0.0 ? std::expm1(std::log(total) / years) : -1.0;
  // Zero-variance return series (constant wealth, or any curve with <= 2
  // points whose single return repeats) have no risk to normalize by;
  // dividing by std_daily == 0 used to emit Inf/NaN here. Convention:
  // Sharpe = 0 for zero-vol series, and annualized_vol stays a finite 0.
  m.sharpe_ratio = std_daily > 0.0 && std::isfinite(std_daily)
                       ? mean / std_daily * std::sqrt(kTradingDaysPerYear)
                       : 0.0;
  m.max_drawdown = MaxDrawdown(wealth);
  // Calmar with a floor on MDD so near-monotone curves don't explode.
  const double mdd_floor = std::max(m.max_drawdown, 0.01);
  m.calmar_ratio = m.annualized_return / mdd_floor;
  return m;
}

std::string PerformanceMetrics::ToString() const {
  std::ostringstream os;
  os.precision(4);
  os << "AR=" << accumulative_return << " SR=" << sharpe_ratio
     << " CR=" << calmar_ratio << " MDD=" << max_drawdown;
  return os.str();
}

}  // namespace cit::env
