#ifndef CIT_MARKET_STREAMING_CSV_H_
#define CIT_MARKET_STREAMING_CSV_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "market/source.h"

namespace cit::market {

struct StreamingCsvOptions {
  // Days per chunk; the resident-memory granule.
  int64_t chunk_days = 256;
  // LRU budget: at most this many chunks stay resident in the source. A
  // PanelView additionally pins up to its small MRU ring per view, so the
  // hard bound on live chunk memory is
  //   (max_resident_chunks + ring_size * num_views) * chunk_bytes.
  int64_t max_resident_chunks = 4;
  // Run a background worker that loads read-ahead hints off the consumer
  // thread. Purely a latency optimization; data is identical either way.
  bool prefetch = true;
};

// Chunked CSV ingest: the file is indexed and fully validated once at
// Open (O(1) memory), then chunks of `chunk_days` rows are parsed on
// demand with the same hardened cell parsing as LoadPanelCsv — so a
// backtest through a StreamingCsvSource is bitwise identical to one
// through LoadPanelCsv + InMemorySource, while resident chunk memory
// stays under the configured budget regardless of panel length.
class StreamingCsvSource : public PanelSource {
 public:
  static Result<std::unique_ptr<StreamingCsvSource>> Open(
      const std::string& path, StreamingCsvOptions options = {});
  ~StreamingCsvSource() override;

  const PanelMeta& meta() const override { return meta_; }
  int64_t chunk_days() const override { return options_.chunk_days; }
  std::shared_ptr<const PanelChunk> FetchChunk(int64_t index) override;
  void Prefetch(int64_t first_day, int64_t last_day) override;

  // Telemetry for tests and the ingest bench.
  int64_t resident_bytes() const;
  int64_t peak_resident_bytes() const;
  int64_t budget_bytes() const;
  int64_t chunk_loads() const;
  int64_t chunk_hits() const;

 private:
  StreamingCsvSource(std::string path, StreamingCsvOptions options);

  // One validating pass over the file: fills meta_, counts days, records
  // the byte offset of each chunk's first data row.
  Status IndexFile();
  // Parses chunk `index` from the file. Thread-safe (private stream per
  // call); touches no shared state.
  std::shared_ptr<const PanelChunk> LoadChunk(int64_t index) const;
  // Inserts under the lock, touching LRU and evicting past the budget.
  std::shared_ptr<const PanelChunk> Insert(
      int64_t index, std::shared_ptr<const PanelChunk> chunk);
  void TouchLocked(int64_t index);
  void WorkerLoop();

  std::string path_;
  StreamingCsvOptions options_;
  PanelMeta meta_;
  std::vector<int64_t> chunk_offsets_;  // byte offset of each chunk start

  mutable std::mutex mu_;
  std::unordered_map<int64_t, std::shared_ptr<const PanelChunk>> resident_;
  std::list<int64_t> lru_;  // front = most recently used
  std::unordered_map<int64_t, std::list<int64_t>::iterator> lru_pos_;
  int64_t resident_bytes_ = 0;
  int64_t peak_resident_bytes_ = 0;
  int64_t chunk_loads_ = 0;
  int64_t chunk_hits_ = 0;

  std::condition_variable cv_;
  std::deque<int64_t> prefetch_queue_;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace cit::market

#endif  // CIT_MARKET_STREAMING_CSV_H_
