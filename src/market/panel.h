#ifndef CIT_MARKET_PANEL_H_
#define CIT_MARKET_PANEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cit::market {

// A panel of daily closing prices for `num_assets` assets over `num_days`
// trading days, plus the train/test split boundary. Prices are stored in
// double precision (portfolio accounting is sensitive to compounding error);
// neural-network feature windows are converted to float at extraction time.
class PricePanel {
 public:
  PricePanel() = default;
  PricePanel(int64_t num_days, int64_t num_assets);

  int64_t num_days() const { return num_days_; }
  int64_t num_assets() const { return num_assets_; }

  double Close(int64_t day, int64_t asset) const;
  void SetClose(int64_t day, int64_t asset, double price);

  // Price relative x_t(i) = p_t(i) / p_{t-1}(i); day must be >= 1.
  // Halted-asset semantics: when either endpoint is non-positive or
  // non-finite (zeroed quote, delisted asset), the relative is exactly
  // 1.0 — capital parked in a halted asset neither grows nor shrinks.
  // See HaltAwareRelative in market/source.h.
  double PriceRelative(int64_t day, int64_t asset) const;

  // Equal-weight buy-and-hold index level normalized to 1.0 at day
  // `base_day` — the "market" rows/curves in the paper's evaluation.
  std::vector<double> IndexLevels(int64_t base_day = 0) const;

  // First day of the test period; days [0, train_end) are training data.
  int64_t train_end() const { return train_end_; }
  void set_train_end(int64_t day) { train_end_ = day; }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  std::vector<std::string>& asset_names() { return asset_names_; }
  const std::vector<std::string>& asset_names() const { return asset_names_; }

  // The full close-price history of one asset (length num_days).
  std::vector<double> AssetSeries(int64_t asset) const;

  // A panel restricted to days [start, end).
  PricePanel SliceDays(int64_t start, int64_t end) const;

  // Raw row-major [num_days, num_assets] close storage; stable while the
  // panel is alive and unmodified. Lets InMemorySource expose the panel
  // as a zero-copy chunk.
  const double* raw_closes() const { return close_.data(); }

 private:
  int64_t num_days_ = 0;
  int64_t num_assets_ = 0;
  int64_t train_end_ = 0;
  std::string name_;
  std::vector<std::string> asset_names_;
  std::vector<double> close_;  // row-major [num_days, num_assets]
};

}  // namespace cit::market

#endif  // CIT_MARKET_PANEL_H_
