#ifndef CIT_MARKET_SOURCE_H_
#define CIT_MARKET_SOURCE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "market/panel.h"

namespace cit::market {

// ---------------------------------------------------------------------------
// The data-plane abstraction (DESIGN.md §11). A PanelSource hands out
// immutable chunks of a price panel on demand; a PanelView gives consumers
// the exact read API of PricePanel (Close / PriceRelative / dims) on top of
// whatever chunking the source uses. Everything downstream of the market
// layer — envs, backtests, agents, the feature cache, serving — reads
// through PanelView, so an in-memory panel, a streamed CSV, an on-demand
// simulator, and a scenario-transformed stack are interchangeable.
// ---------------------------------------------------------------------------

// Immutable panel-level metadata, fixed for the lifetime of a source.
struct PanelMeta {
  int64_t num_days = 0;
  int64_t num_assets = 0;
  int64_t train_end = 0;  // first test day; days [0, train_end) train
  std::string name;
  std::vector<std::string> asset_names;
};

// One contiguous run of days. `data` points at row-major
// [num_days, num_assets] closes; it either borrows storage that outlives
// the chunk (in-memory sources) or points into `owned`.
struct PanelChunk {
  int64_t start_day = 0;
  int64_t num_days = 0;
  int64_t num_assets = 0;
  const double* data = nullptr;
  std::vector<double> owned;

  bool Covers(int64_t day) const {
    return day >= start_day && day < start_day + num_days;
  }
  double At(int64_t day, int64_t asset) const {
    return data[(day - start_day) * num_assets + asset];
  }
  // Bytes of chunk-owned storage (0 for borrowing chunks).
  int64_t OwnedBytes() const {
    return static_cast<int64_t>(owned.size() * sizeof(double));
  }
};

// Halted/delisted-asset convention for price relatives: when either
// endpoint is missing (non-finite) or non-positive — a halted day, a
// zeroed quote, a delisted asset — capital parked in the asset neither
// grows nor shrinks: the relative is exactly 1.0. For valid prices this is
// the plain ratio; a frozen (stale) quote also yields exactly 1.0 because
// IEEE division guarantees p/p == 1.0 for finite nonzero p.
inline double HaltAwareRelative(double prev, double cur) {
  if (!(prev > 0.0) || !(cur > 0.0) || prev - prev != 0.0 ||
      cur - cur != 0.0) {
    return 1.0;
  }
  return cur / prev;
}

// Chunked read access to one logical price panel.
//
// Contract:
//  * meta() is fixed at construction and valid for the source's lifetime.
//  * chunk_days() > 0; chunk `c` covers days
//    [c * chunk_days, min((c+1) * chunk_days, num_days)).
//  * FetchChunk returns the same data for the same index every time,
//    independent of access order or calling thread (determinism gate), and
//    is safe to call from multiple threads concurrently.
//  * Prefetch is a non-binding hint; correctness never depends on it.
//  * source_id() is allocated from a process-global counter and never
//    recycled, so downstream caches keyed by (source_id, day) can never
//    confuse two sources the way address-keyed caches could when a
//    short-lived panel's address was reused (the serving-path staleness
//    hazard ClearFeatureCache used to paper over).
class PanelSource {
 public:
  PanelSource();
  virtual ~PanelSource() = default;

  PanelSource(const PanelSource&) = delete;
  PanelSource& operator=(const PanelSource&) = delete;

  uint64_t source_id() const { return source_id_; }

  virtual const PanelMeta& meta() const = 0;
  virtual int64_t chunk_days() const = 0;
  virtual std::shared_ptr<const PanelChunk> FetchChunk(int64_t index) = 0;

  // Hint that days [first_day, last_day] will be read soon.
  virtual void Prefetch(int64_t first_day, int64_t last_day) {
    (void)first_day;
    (void)last_day;
  }

  // Scenario hook: scales the env's proportional transaction cost on the
  // step executed at `day` (liquidity-hole stress). 1.0 everywhere for
  // plain data sources.
  virtual double CostMultiplier(int64_t day) const {
    (void)day;
    return 1.0;
  }

  int64_t num_chunks() const {
    const int64_t days = meta().num_days;
    const int64_t cd = chunk_days();
    return days == 0 ? 0 : (days + cd - 1) / cd;
  }

 private:
  uint64_t source_id_;
};

// A lightweight, copyable window onto a PanelSource with the read API of
// PricePanel. Holds a small MRU ring of fetched chunks, so sequential and
// windowed access patterns (feature windows, backtest loops) hit at most
// one fetch per chunk transition; when one chunk covers the whole panel
// (InMemorySource) every read after the first is a direct pointer index.
//
// A PanelView is NOT safe for concurrent use by multiple threads — copy it
// instead (copies share the source but keep private rings). This is the
// same lifetime contract as the `const PricePanel*` it replaces: the
// source must outlive every view onto it.
class PanelView {
 public:
  PanelView() = default;
  explicit PanelView(PanelSource* source) : source_(source) {
    CIT_CHECK(source != nullptr);
    meta_ = &source->meta();
    chunk_days_ = source->chunk_days();
    CIT_CHECK_GT(chunk_days_, 0);
  }

  // Implicit adapter: wraps `panel` in a view-owned InMemorySource
  // borrowing the panel's storage, so PanelView-taking APIs accept a
  // PricePanel directly. The panel must outlive the view — the same
  // lifetime contract as the `const PricePanel*` this type replaces.
  // Every conversion allocates a fresh source id, so code that relies on
  // source-keyed caches across calls should build one source up front
  // instead of converting per call.
  PanelView(const PricePanel& panel);  // NOLINT(runtime/explicit)

  bool valid() const { return source_ != nullptr; }
  uint64_t source_id() const { return source_->source_id(); }
  PanelSource* source() const { return source_; }

  int64_t num_days() const { return meta_->num_days; }
  int64_t num_assets() const { return meta_->num_assets; }
  int64_t train_end() const { return meta_->train_end; }
  const std::string& name() const { return meta_->name; }
  const std::vector<std::string>& asset_names() const {
    return meta_->asset_names;
  }

  double Close(int64_t day, int64_t asset) const {
    CIT_CHECK(day >= 0 && day < meta_->num_days);
    CIT_CHECK(asset >= 0 && asset < meta_->num_assets);
    const PanelChunk* c = hot_;
    if (c == nullptr || !c->Covers(day)) c = ChunkFor(day);
    return c->At(day, asset);
  }

  // Price relative x_t(i) = p_t(i) / p_{t-1}(i) with halted-asset
  // semantics (HaltAwareRelative); day must be >= 1.
  double PriceRelative(int64_t day, int64_t asset) const {
    CIT_CHECK_GE(day, 1);
    return HaltAwareRelative(Close(day - 1, asset), Close(day, asset));
  }

  // Cost-multiplier passthrough for the env (liquidity scenarios).
  double CostMultiplier(int64_t day) const {
    return source_->CostMultiplier(day);
  }

  // Forwards a read-ahead hint to the source (clamped to the panel).
  void Hint(int64_t first_day, int64_t last_day) const;

  // Materializes the viewed range into an owned PricePanel (tests, tools).
  PricePanel Materialize() const;

 private:
  const PanelChunk* ChunkFor(int64_t day) const;

  PanelSource* source_ = nullptr;  // borrowed unless owned_source_ is set
  std::shared_ptr<PanelSource> owned_source_;  // set by the panel adapter
  const PanelMeta* meta_ = nullptr;
  int64_t chunk_days_ = 1;
  // MRU ring of resident chunks; hot_ points into the ring entry that
  // served the last read.
  static constexpr int kRing = 4;
  mutable std::array<std::shared_ptr<const PanelChunk>, kRing> ring_;
  mutable int ring_next_ = 0;
  mutable const PanelChunk* hot_ = nullptr;
};

// The bitwise-compatibility anchor: wraps a PricePanel as a single
// whole-panel chunk borrowing the panel's storage (zero copy), so reads
// through a view are the very same loads as reads through the panel.
class InMemorySource : public PanelSource {
 public:
  // Borrows `panel`, which must outlive the source.
  explicit InMemorySource(const PricePanel* panel);
  // Owns a moved-in panel.
  explicit InMemorySource(PricePanel panel);

  const PanelMeta& meta() const override { return meta_; }
  int64_t chunk_days() const override;
  std::shared_ptr<const PanelChunk> FetchChunk(int64_t index) override;

  const PricePanel& panel() const { return *panel_; }

 private:
  void Init();

  PricePanel owned_;
  const PricePanel* panel_ = nullptr;
  PanelMeta meta_;
  std::shared_ptr<const PanelChunk> chunk_;
};

}  // namespace cit::market

#endif  // CIT_MARKET_SOURCE_H_
