#include "market/source.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace cit::market {

namespace {

// Process-global id allocator. Ids start at 1 (0 = "no source" in caches)
// and are never recycled.
std::atomic<uint64_t> g_next_source_id{1};

}  // namespace

PanelSource::PanelSource()
    : source_id_(g_next_source_id.fetch_add(1, std::memory_order_relaxed)) {}

PanelView::PanelView(const PricePanel& panel)
    : owned_source_(std::make_shared<InMemorySource>(&panel)) {
  source_ = owned_source_.get();
  meta_ = &source_->meta();
  chunk_days_ = source_->chunk_days();
  CIT_CHECK_GT(chunk_days_, 0);
}

const PanelChunk* PanelView::ChunkFor(int64_t day) const {
  // Ring hit?
  for (const auto& c : ring_) {
    if (c && c->Covers(day)) {
      hot_ = c.get();
      return hot_;
    }
  }
  const int64_t index = day / chunk_days_;
  std::shared_ptr<const PanelChunk> chunk = source_->FetchChunk(index);
  CIT_CHECK(chunk != nullptr);
  CIT_CHECK(chunk->Covers(day));
  // Sequential scans cross chunk boundaries in order; let the source start
  // on the next chunk while we consume this one.
  const int64_t next_first = (index + 1) * chunk_days_;
  if (next_first < meta_->num_days) {
    source_->Prefetch(next_first,
                      std::min(next_first + chunk_days_ - 1,
                               meta_->num_days - 1));
  }
  ring_[ring_next_] = std::move(chunk);
  hot_ = ring_[ring_next_].get();
  ring_next_ = (ring_next_ + 1) % kRing;
  return hot_;
}

void PanelView::Hint(int64_t first_day, int64_t last_day) const {
  first_day = std::max<int64_t>(0, first_day);
  last_day = std::min(last_day, meta_->num_days - 1);
  if (first_day <= last_day) source_->Prefetch(first_day, last_day);
}

PricePanel PanelView::Materialize() const {
  PricePanel out(num_days(), num_assets());
  out.set_name(name());
  out.set_train_end(train_end());
  out.asset_names() = asset_names();
  for (int64_t t = 0; t < num_days(); ++t) {
    for (int64_t i = 0; i < num_assets(); ++i) {
      out.SetClose(t, i, Close(t, i));
    }
  }
  return out;
}

InMemorySource::InMemorySource(const PricePanel* panel) : panel_(panel) {
  CIT_CHECK(panel != nullptr);
  Init();
}

InMemorySource::InMemorySource(PricePanel panel)
    : owned_(std::move(panel)), panel_(&owned_) {
  Init();
}

void InMemorySource::Init() {
  meta_.num_days = panel_->num_days();
  meta_.num_assets = panel_->num_assets();
  meta_.train_end = panel_->train_end();
  meta_.name = panel_->name();
  meta_.asset_names = panel_->asset_names();

  auto chunk = std::make_shared<PanelChunk>();
  chunk->start_day = 0;
  chunk->num_days = panel_->num_days();
  chunk->num_assets = panel_->num_assets();
  chunk->data = panel_->raw_closes();  // zero copy: borrows panel storage
  chunk_ = std::move(chunk);
}

int64_t InMemorySource::chunk_days() const {
  return std::max<int64_t>(1, meta_.num_days);
}

std::shared_ptr<const PanelChunk> InMemorySource::FetchChunk(int64_t index) {
  CIT_CHECK_EQ(index, 0);
  return chunk_;
}

}  // namespace cit::market
