#include "market/panel.h"

#include "common/check.h"
#include "market/source.h"

namespace cit::market {

PricePanel::PricePanel(int64_t num_days, int64_t num_assets)
    : num_days_(num_days),
      num_assets_(num_assets),
      close_(static_cast<size_t>(num_days * num_assets), 0.0) {
  CIT_CHECK_GE(num_days, 0);
  CIT_CHECK_GE(num_assets, 0);
  asset_names_.resize(num_assets);
  for (int64_t i = 0; i < num_assets; ++i) {
    const std::string suffix = std::to_string(i);
    asset_names_[i] = "A" + suffix;
  }
}

double PricePanel::Close(int64_t day, int64_t asset) const {
  CIT_CHECK(day >= 0 && day < num_days_);
  CIT_CHECK(asset >= 0 && asset < num_assets_);
  return close_[day * num_assets_ + asset];
}

void PricePanel::SetClose(int64_t day, int64_t asset, double price) {
  CIT_CHECK(day >= 0 && day < num_days_);
  CIT_CHECK(asset >= 0 && asset < num_assets_);
  close_[day * num_assets_ + asset] = price;
}

double PricePanel::PriceRelative(int64_t day, int64_t asset) const {
  CIT_CHECK_GE(day, 1);
  return HaltAwareRelative(Close(day - 1, asset), Close(day, asset));
}

std::vector<double> PricePanel::IndexLevels(int64_t base_day) const {
  CIT_CHECK(base_day >= 0 && base_day < num_days_);
  std::vector<double> levels(num_days_, 0.0);
  // Equal dollar amounts bought at base_day and held.
  for (int64_t t = 0; t < num_days_; ++t) {
    double level = 0.0;
    for (int64_t i = 0; i < num_assets_; ++i) {
      level += Close(t, i) / Close(base_day, i);
    }
    levels[t] = level / static_cast<double>(num_assets_);
  }
  return levels;
}

std::vector<double> PricePanel::AssetSeries(int64_t asset) const {
  std::vector<double> out(num_days_);
  for (int64_t t = 0; t < num_days_; ++t) out[t] = Close(t, asset);
  return out;
}

PricePanel PricePanel::SliceDays(int64_t start, int64_t end) const {
  CIT_CHECK(start >= 0 && start <= end && end <= num_days_);
  PricePanel out(end - start, num_assets_);
  out.name_ = name_;
  out.asset_names_ = asset_names_;
  for (int64_t t = start; t < end; ++t) {
    for (int64_t i = 0; i < num_assets_; ++i) {
      out.SetClose(t - start, i, Close(t, i));
    }
  }
  out.train_end_ = std::max<int64_t>(
      0, std::min(train_end_ - start, out.num_days_));
  return out;
}

}  // namespace cit::market
