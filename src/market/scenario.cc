#include "market/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/check.h"

namespace cit::market {

namespace {

// Typed parameter reader over ScenarioSpec::params that rejects unknown
// keys: a typo'd parameter silently doing nothing is the worst failure
// mode a stress-test config can have.
class ParamReader {
 public:
  explicit ParamReader(const ScenarioSpec& spec) : spec_(spec) {}

  bool Has(const std::string& key) {
    consumed_.push_back(key);
    return spec_.params.count(key) != 0;
  }

  double Get(const std::string& key, double default_value) {
    consumed_.push_back(key);
    auto it = spec_.params.find(key);
    return it == spec_.params.end() ? default_value : it->second;
  }

  Status VerifyConsumed() const {
    for (const auto& [key, value] : spec_.params) {
      (void)value;
      if (std::find(consumed_.begin(), consumed_.end(), key) ==
          consumed_.end()) {
        return Status::InvalidArgument("scenario '" + spec_.name +
                                       "': unknown parameter '" + key + "'");
      }
    }
    return Status::OK();
  }

 private:
  const ScenarioSpec& spec_;
  std::vector<std::string> consumed_;
};

// Anchor-day resolution shared by the presets: an absolute `day` wins;
// otherwise `test_offset` days into the test split (so one stack string
// works across panel sizes).
int64_t ResolveDay(const ScenarioTransform::Input& input, bool has_day,
                   double day, double test_offset) {
  int64_t resolved = has_day
                         ? static_cast<int64_t>(day)
                         : input.train_end() +
                               static_cast<int64_t>(test_offset);
  return std::clamp<int64_t>(resolved, 0, input.num_days() - 1);
}

// --- flash_crash -----------------------------------------------------------
// A slide of total log-depth `depth` over `ramp_days` on the first
// round(assets_frac * m) assets, then (optionally) a linear recovery over
// `recover_days`. recover_days=0 means the crash never retraces — the
// post-jump continuation regime that breaks naive mean reversion.
class FlashCrashTransform : public ScenarioTransform {
 public:
  FlashCrashTransform(bool has_day, double day, double test_offset,
                      double depth, double ramp_days, double recover_days,
                      double assets_frac)
      : has_day_(has_day),
        day_(day),
        test_offset_(test_offset),
        depth_(depth),
        ramp_days_(std::max(1.0, ramp_days)),
        recover_days_(recover_days),
        assets_frac_(assets_frac) {}

  const std::string& name() const override {
    static const std::string kName = "flash_crash";
    return kName;
  }

  void Apply(const Input& input, int64_t day, double* row) const override {
    const int64_t crash_day = ResolveDay(input, has_day_, day_, test_offset_);
    if (day < crash_day) return;
    const double slide = std::min(
        1.0, static_cast<double>(day - crash_day + 1) / ramp_days_);
    double depth_now = depth_ * slide;
    if (slide >= 1.0 && recover_days_ > 0.0) {
      const int64_t bottom =
          crash_day + static_cast<int64_t>(ramp_days_) - 1;
      const double rec = std::min(
          1.0, static_cast<double>(day - bottom) / recover_days_);
      depth_now = depth_ * (1.0 - rec);
    }
    if (depth_now <= 0.0) return;
    const double factor = 1.0 - depth_now;
    const int64_t m = input.num_assets();
    const int64_t affected = std::clamp<int64_t>(
        static_cast<int64_t>(std::lround(assets_frac_ * m)), 1, m);
    for (int64_t i = 0; i < affected; ++i) row[i] *= factor;
  }

 private:
  bool has_day_;
  double day_, test_offset_, depth_, ramp_days_, recover_days_, assets_frac_;
};

// --- correlation_breakdown -------------------------------------------------
// Inside the window, each asset's cumulative return from the start day is
// blended toward the cross-sectional (equal-weight, geometric) market
// return:  p'_i(t) = p_i(s) * G(t)^c * (p_i(t)/p_i(s))^(1-c).
// c=1 collapses every asset onto the market path — diversification and
// cross-sectional bets stop paying.
class CorrelationBreakdownTransform : public ScenarioTransform {
 public:
  CorrelationBreakdownTransform(bool has_day, double day, double test_offset,
                                double length, double compress)
      : has_day_(has_day),
        day_(day),
        test_offset_(test_offset),
        length_(length),
        compress_(compress) {}

  const std::string& name() const override {
    static const std::string kName = "correlation_breakdown";
    return kName;
  }

  void Apply(const Input& input, int64_t day, double* row) const override {
    const int64_t start = ResolveDay(input, has_day_, day_, test_offset_);
    if (day <= start) return;
    if (length_ > 0.0 && day >= start + static_cast<int64_t>(length_)) {
      return;
    }
    const int64_t m = input.num_assets();
    // Geometric-mean market growth since the start day, over assets with
    // valid quotes at both endpoints.
    double log_sum = 0.0;
    int64_t valid = 0;
    for (int64_t i = 0; i < m; ++i) {
      const double anchor = input.Close(start, i);
      if (!(anchor > 0.0) || !(row[i] > 0.0)) continue;
      log_sum += std::log(row[i] / anchor);
      ++valid;
    }
    if (valid == 0) return;
    const double log_g = log_sum / static_cast<double>(valid);
    for (int64_t i = 0; i < m; ++i) {
      const double anchor = input.Close(start, i);
      if (!(anchor > 0.0) || !(row[i] > 0.0)) continue;
      const double log_rel = std::log(row[i] / anchor);
      row[i] = anchor * std::exp(compress_ * log_g +
                                 (1.0 - compress_) * log_rel);
    }
  }

 private:
  bool has_day_;
  double day_, test_offset_, length_, compress_;
};

// --- liquidity_hole --------------------------------------------------------
// Widens the proportional transaction cost by `cost_mult` inside the
// window; prices are untouched, so agents that keep still sail through
// and agents that churn bleed.
class LiquidityHoleTransform : public ScenarioTransform {
 public:
  LiquidityHoleTransform(bool has_day, double day, double test_offset,
                         double length, double cost_mult)
      : has_day_(has_day),
        day_(day),
        test_offset_(test_offset),
        length_(length),
        cost_mult_(cost_mult) {}

  const std::string& name() const override {
    static const std::string kName = "liquidity_hole";
    return kName;
  }

  void Apply(const Input& input, int64_t day, double* row) const override {
    (void)input;
    (void)day;
    (void)row;
  }

  double CostMultiplier(int64_t day) const override {
    // The window is resolved against the panel inside ScenarioSource;
    // here we only see absolute bounds. has_day_=false windows are
    // resolved lazily via set_resolved_window.
    if (day < window_start_ || day >= window_end_) return 1.0;
    return cost_mult_;
  }

  // Called once by ScenarioSource after the panel dims are known.
  void ResolveWindow(int64_t train_end, int64_t num_days) {
    window_start_ = has_day_ ? static_cast<int64_t>(day_)
                             : train_end + static_cast<int64_t>(test_offset_);
    window_start_ = std::clamp<int64_t>(window_start_, 0, num_days - 1);
    window_end_ = length_ > 0.0
                      ? window_start_ + static_cast<int64_t>(length_)
                      : num_days;
  }

 private:
  bool has_day_;
  double day_, test_offset_, length_, cost_mult_;
  int64_t window_start_ = 0;
  int64_t window_end_ = 0;
};

// --- halt ------------------------------------------------------------------
// Freezes `assets` consecutive assets starting at `offset` to their last
// pre-halt quote for `length` days (length=0: delisted to the end). With
// zero=1 the quotes are zeroed instead — the pathological feed the
// halted-relative semantics (HaltAwareRelative) must absorb.
class HaltTransform : public ScenarioTransform {
 public:
  HaltTransform(bool has_day, double day, double test_offset, double length,
                double assets, double offset, double zero)
      : has_day_(has_day),
        day_(day),
        test_offset_(test_offset),
        length_(length),
        assets_(assets),
        offset_(offset),
        zero_(zero != 0.0) {}

  const std::string& name() const override {
    static const std::string kName = "halt";
    return kName;
  }

  void Apply(const Input& input, int64_t day, double* row) const override {
    int64_t start = ResolveDay(input, has_day_, day_, test_offset_);
    // A stale quote needs a pre-halt day to freeze at.
    if (start < 1) start = 1;
    if (day < start) return;
    if (length_ > 0.0 && day >= start + static_cast<int64_t>(length_)) {
      return;
    }
    const int64_t m = input.num_assets();
    const int64_t first =
        std::clamp<int64_t>(static_cast<int64_t>(offset_), 0, m - 1);
    const int64_t count = std::clamp<int64_t>(
        static_cast<int64_t>(assets_), 1, m - first);
    for (int64_t i = first; i < first + count; ++i) {
      row[i] = zero_ ? 0.0 : input.Close(start - 1, i);
    }
  }

 private:
  bool has_day_;
  double day_, test_offset_, length_, assets_, offset_;
  bool zero_;
};

// --- regime_flip -----------------------------------------------------------
// Reflects each asset's post-flip cumulative return around the flip day:
// p'_i(t) = p_i(D)^2 / p_i(t). Past winners keep "momentum" into the flip
// and then give it all back — momentum becomes reversal mid-test.
class RegimeFlipTransform : public ScenarioTransform {
 public:
  RegimeFlipTransform(bool has_day, double day, bool has_offset,
                      double test_offset)
      : has_day_(has_day),
        day_(day),
        has_offset_(has_offset),
        test_offset_(test_offset) {}

  const std::string& name() const override {
    static const std::string kName = "regime_flip";
    return kName;
  }

  void Apply(const Input& input, int64_t day, double* row) const override {
    // Default: flip halfway through the test split ("mid-test").
    const double default_offset =
        has_offset_
            ? test_offset_
            : static_cast<double>(
                  (input.num_days() - input.train_end()) / 2);
    const int64_t flip =
        ResolveDay(input, has_day_, day_, default_offset);
    if (day <= flip) return;
    for (int64_t i = 0; i < input.num_assets(); ++i) {
      const double pivot = input.Close(flip, i);
      if (!(pivot > 0.0) || !(row[i] > 0.0)) continue;
      row[i] = pivot * pivot / row[i];
    }
  }

 private:
  bool has_day_;
  double day_;
  bool has_offset_;
  double test_offset_;
};

// --- registry --------------------------------------------------------------

struct Registry {
  std::mutex mu;
  std::map<std::string, ScenarioFactory> factories;
};

Registry& GetRegistry();

Result<std::unique_ptr<ScenarioTransform>> MakeFlashCrash(
    const ScenarioSpec& spec) {
  ParamReader p(spec);
  const bool has_day = p.Has("day");
  const double day = p.Get("day", -1.0);
  const double test_offset = p.Get("test_offset", 10.0);
  const double depth = p.Get("depth", 0.3);
  const double ramp_days = p.Get("ramp_days", 1.0);
  const double recover_days = p.Get("recover_days", 0.0);
  const double assets_frac = p.Get("assets_frac", 0.5);
  if (const Status s = p.VerifyConsumed(); !s.ok()) return s;
  if (depth <= 0.0 || depth >= 1.0) {
    return Status::InvalidArgument("flash_crash: depth must be in (0, 1)");
  }
  if (assets_frac <= 0.0 || assets_frac > 1.0) {
    return Status::InvalidArgument(
        "flash_crash: assets_frac must be in (0, 1]");
  }
  return std::unique_ptr<ScenarioTransform>(
      new FlashCrashTransform(has_day, day, test_offset, depth, ramp_days,
                              recover_days, assets_frac));
}

Result<std::unique_ptr<ScenarioTransform>> MakeCorrelationBreakdown(
    const ScenarioSpec& spec) {
  ParamReader p(spec);
  const bool has_day = p.Has("day");
  const double day = p.Get("day", -1.0);
  const double test_offset = p.Get("test_offset", 0.0);
  const double length = p.Get("length", 0.0);
  const double compress = p.Get("compress", 0.9);
  if (const Status s = p.VerifyConsumed(); !s.ok()) return s;
  if (compress < 0.0 || compress > 1.0) {
    return Status::InvalidArgument(
        "correlation_breakdown: compress must be in [0, 1]");
  }
  return std::unique_ptr<ScenarioTransform>(new CorrelationBreakdownTransform(
      has_day, day, test_offset, length, compress));
}

Result<std::unique_ptr<ScenarioTransform>> MakeLiquidityHole(
    const ScenarioSpec& spec) {
  ParamReader p(spec);
  const bool has_day = p.Has("day");
  const double day = p.Get("day", -1.0);
  const double test_offset = p.Get("test_offset", 10.0);
  const double length = p.Get("length", 40.0);
  const double cost_mult = p.Get("cost_mult", 8.0);
  if (const Status s = p.VerifyConsumed(); !s.ok()) return s;
  if (cost_mult < 1.0) {
    return Status::InvalidArgument(
        "liquidity_hole: cost_mult must be >= 1");
  }
  return std::unique_ptr<ScenarioTransform>(new LiquidityHoleTransform(
      has_day, day, test_offset, length, cost_mult));
}

Result<std::unique_ptr<ScenarioTransform>> MakeHalt(const ScenarioSpec& spec) {
  ParamReader p(spec);
  const bool has_day = p.Has("day");
  const double day = p.Get("day", -1.0);
  const double test_offset = p.Get("test_offset", 10.0);
  const double length = p.Get("length", 30.0);
  const double assets = p.Get("assets", 1.0);
  const double offset = p.Get("offset", 0.0);
  const double zero = p.Get("zero", 0.0);
  if (const Status s = p.VerifyConsumed(); !s.ok()) return s;
  if (assets < 1.0) {
    return Status::InvalidArgument("halt: assets must be >= 1");
  }
  return std::unique_ptr<ScenarioTransform>(new HaltTransform(
      has_day, day, test_offset, length, assets, offset, zero));
}

Result<std::unique_ptr<ScenarioTransform>> MakeRegimeFlip(
    const ScenarioSpec& spec) {
  ParamReader p(spec);
  const bool has_day = p.Has("day");
  const double day = p.Get("day", -1.0);
  const bool has_offset = p.Has("test_offset");
  const double test_offset = p.Get("test_offset", 0.0);
  if (const Status s = p.VerifyConsumed(); !s.ok()) return s;
  return std::unique_ptr<ScenarioTransform>(
      new RegimeFlipTransform(has_day, day, has_offset, test_offset));
}

Registry& GetRegistry() {
  static Registry* registry = [] {
    auto* r = new Registry();
    r->factories["flash_crash"] = MakeFlashCrash;
    r->factories["correlation_breakdown"] = MakeCorrelationBreakdown;
    r->factories["liquidity_hole"] = MakeLiquidityHole;
    r->factories["halt"] = MakeHalt;
    r->factories["regime_flip"] = MakeRegimeFlip;
    return r;
  }();
  return *registry;
}

}  // namespace

void RegisterScenario(const std::string& name, ScenarioFactory factory) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.factories[name] = std::move(factory);
}

std::vector<std::string> RegisteredScenarioNames() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& [name, factory] : r.factories) {
    (void)factory;
    names.push_back(name);
  }
  return names;
}

Result<std::unique_ptr<ScenarioTransform>> MakeScenarioTransform(
    const ScenarioSpec& spec) {
  ScenarioFactory factory;
  {
    Registry& r = GetRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.factories.find(spec.name);
    if (it == r.factories.end()) {
      return Status::NotFound("unknown scenario preset: '" + spec.name + "'");
    }
    factory = it->second;
  }
  return factory(spec);
}

Result<std::vector<ScenarioSpec>> ParseScenarioStack(
    const std::string& text) {
  std::vector<ScenarioSpec> stack;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t bar = text.find('|', pos);
    if (bar == std::string::npos) bar = text.size();
    const std::string item = text.substr(pos, bar - pos);
    pos = bar + 1;
    if (item.empty()) {
      if (text.empty()) break;
      return Status::InvalidArgument("empty scenario in stack: '" + text +
                                     "'");
    }
    ScenarioSpec spec;
    const size_t colon = item.find(':');
    spec.name = item.substr(0, colon);
    if (spec.name.empty()) {
      return Status::InvalidArgument("scenario with empty name in stack");
    }
    if (colon != std::string::npos) {
      const std::string params = item.substr(colon + 1);
      size_t ppos = 0;
      while (ppos <= params.size()) {
        size_t comma = params.find(',', ppos);
        if (comma == std::string::npos) comma = params.size();
        const std::string pair = params.substr(ppos, comma - ppos);
        ppos = comma + 1;
        if (pair.empty()) {
          return Status::InvalidArgument("empty parameter in scenario '" +
                                         spec.name + "'");
        }
        const size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0) {
          return Status::InvalidArgument("malformed parameter '" + pair +
                                         "' in scenario '" + spec.name +
                                         "' (want key=value)");
        }
        const std::string key = pair.substr(0, eq);
        const std::string value = pair.substr(eq + 1);
        char* end = nullptr;
        const double v = std::strtod(value.c_str(), &end);
        if (value.empty() || end != value.c_str() + value.size() ||
            !std::isfinite(v)) {
          return Status::InvalidArgument("non-numeric value '" + value +
                                         "' for parameter '" + key +
                                         "' in scenario '" + spec.name + "'");
        }
        spec.params[key] = v;
        if (comma == params.size()) break;
      }
    }
    stack.push_back(std::move(spec));
    if (bar == text.size()) break;
  }
  return stack;
}

std::string FormatScenarioStack(const std::vector<ScenarioSpec>& stack) {
  std::string out;
  for (size_t i = 0; i < stack.size(); ++i) {
    if (i > 0) out += "|";
    out += stack[i].name;
    bool first = true;
    for (const auto& [key, value] : stack[i].params) {
      out += first ? ":" : ",";
      first = false;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", value);
      out += key + "=" + buf;
    }
  }
  return out;
}

// --- ScenarioSource --------------------------------------------------------

// Adapter giving transform k read access to the stack prefix below it.
class ScenarioSource::LevelInput : public ScenarioTransform::Input {
 public:
  LevelInput(ScenarioSource* source, size_t level)
      : source_(source), level_(level) {}

  double Close(int64_t day, int64_t asset) const override {
    const uint64_t key =
        (static_cast<uint64_t>(level_) << 40) | static_cast<uint64_t>(day);
    auto it = source_->anchor_rows_.find(key);
    if (it == source_->anchor_rows_.end()) {
      std::vector<double> row(source_->meta_.num_assets);
      source_->EvalRow(day, level_, row.data());
      it = source_->anchor_rows_.emplace(key, std::move(row)).first;
    }
    return it->second[asset];
  }

  int64_t num_days() const override { return source_->meta_.num_days; }
  int64_t num_assets() const override { return source_->meta_.num_assets; }
  int64_t train_end() const override { return source_->meta_.train_end; }

 private:
  ScenarioSource* source_;
  size_t level_;
};

ScenarioSource::ScenarioSource(
    PanelSource* base, std::vector<std::unique_ptr<ScenarioTransform>> stack)
    : base_(base), stack_(std::move(stack)) {
  CIT_CHECK(base != nullptr);
  meta_ = base->meta();
  for (const auto& t : stack_) {
    meta_.name += "+" + t->name();
    // Window-based cost transforms need the panel dims to resolve their
    // relative anchors once.
    if (auto* lh = dynamic_cast<LiquidityHoleTransform*>(t.get())) {
      lh->ResolveWindow(meta_.train_end, meta_.num_days);
    }
  }
  base_view_ = PanelView(base_);
}

Result<std::unique_ptr<ScenarioSource>> ScenarioSource::Make(
    PanelSource* base, const std::vector<ScenarioSpec>& stack) {
  std::vector<std::unique_ptr<ScenarioTransform>> transforms;
  transforms.reserve(stack.size());
  for (const ScenarioSpec& spec : stack) {
    auto made = MakeScenarioTransform(spec);
    if (!made.ok()) return made.status();
    transforms.push_back(std::move(made).value());
  }
  return std::make_unique<ScenarioSource>(base, std::move(transforms));
}

void ScenarioSource::EvalRow(int64_t day, size_t level, double* row) {
  const int64_t m = meta_.num_assets;
  for (int64_t i = 0; i < m; ++i) row[i] = base_view_.Close(day, i);
  for (size_t k = 0; k < level; ++k) {
    LevelInput input(this, k);
    stack_[k]->Apply(input, day, row);
  }
}

std::shared_ptr<const PanelChunk> ScenarioSource::FetchChunk(int64_t index) {
  CIT_CHECK(index >= 0 && index < num_chunks());
  const int64_t cd = chunk_days();
  const int64_t start_day = index * cd;
  const int64_t days = std::min(cd, meta_.num_days - start_day);
  const int64_t m = meta_.num_assets;

  auto chunk = std::make_shared<PanelChunk>();
  chunk->start_day = start_day;
  chunk->num_days = days;
  chunk->num_assets = m;
  chunk->owned.resize(static_cast<size_t>(days * m));

  std::lock_guard<std::mutex> lock(mu_);
  for (int64_t r = 0; r < days; ++r) {
    EvalRow(start_day + r, stack_.size(), chunk->owned.data() + r * m);
  }
  chunk->data = chunk->owned.data();
  return chunk;
}

double ScenarioSource::CostMultiplier(int64_t day) const {
  double mult = base_->CostMultiplier(day);
  for (const auto& t : stack_) mult *= t->CostMultiplier(day);
  return mult;
}

}  // namespace cit::market
