#include "market/sim_source.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace cit::market {

SimulatorSource::SimulatorSource(const MarketConfig& config,
                                 int64_t chunk_days)
    : config_(config), chunk_days_(chunk_days), frontier_(config) {
  CIT_CHECK_GT(chunk_days_, 0);
  meta_.num_days = config_.num_days();
  meta_.num_assets = config_.num_assets;
  meta_.train_end = config_.train_days;
  meta_.name = config_.name;
  meta_.asset_names.resize(config_.num_assets);
  for (int64_t i = 0; i < config_.num_assets; ++i) {
    meta_.asset_names[i] = "A" + std::to_string(i);
  }
  snapshots_.push_back(frontier_);  // state before day 0
}

void SimulatorSource::ExtendTo(int64_t index) {
  std::vector<double> discard(config_.num_assets);
  while (static_cast<int64_t>(snapshots_.size()) <= index) {
    // Advance the frontier through the chunk the last snapshot opens,
    // discarding rows — only the boundary state is kept. FetchChunk
    // regenerates rows from the snapshot, so every chunk is produced by
    // the same draw sequence regardless of which chunk is asked first.
    const int64_t upto = std::min(
        static_cast<int64_t>(snapshots_.size()) * chunk_days_,
        meta_.num_days);
    while (frontier_.next_day() < upto) frontier_.StepDay(discard.data());
    snapshots_.push_back(frontier_);
  }
}

std::shared_ptr<const PanelChunk> SimulatorSource::FetchChunk(
    int64_t index) {
  CIT_CHECK(index >= 0 && index < num_chunks());
  const int64_t start_day = index * chunk_days_;
  const int64_t days = std::min(chunk_days_, meta_.num_days - start_day);
  const int64_t m = meta_.num_assets;

  auto chunk = std::make_shared<PanelChunk>();
  chunk->start_day = start_day;
  chunk->num_days = days;
  chunk->num_assets = m;
  chunk->owned.resize(static_cast<size_t>(days * m));

  std::lock_guard<std::mutex> lock(mu_);
  ExtendTo(index);
  MarketSim replay = snapshots_[index];
  CIT_CHECK_EQ(replay.next_day(), start_day);
  for (int64_t r = 0; r < days; ++r) {
    replay.StepDay(chunk->owned.data() + r * m);
  }
  chunk->data = chunk->owned.data();
  return chunk;
}

}  // namespace cit::market
