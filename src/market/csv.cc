#include "market/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "market/csv_parse.h"

namespace cit::market {

using csv_internal::ParseInt64;
using csv_internal::ParsePriceCell;
using csv_internal::StripTrailingCr;

Status SavePanelCsv(const PricePanel& panel, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "#train_end=" << panel.train_end() << "\n";
  out << "day";
  for (const auto& name : panel.asset_names()) out << "," << name;
  out << "\n";
  out.precision(10);
  for (int64_t t = 0; t < panel.num_days(); ++t) {
    out << t;
    for (int64_t i = 0; i < panel.num_assets(); ++i) {
      out << "," << panel.Close(t, i);
    }
    out << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<PricePanel> LoadPanelCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  int64_t train_end = 0;
  bool saw_train_end = false;
  std::string line;
  // Optional comment lines before the header.
  while (std::getline(in, line)) {
    StripTrailingCr(&line);
    if (line.empty()) continue;
    if (line[0] == '#') {
      const std::string key = "#train_end=";
      if (line.rfind(key, 0) == 0) {
        if (!ParseInt64(line.substr(key.size()), &train_end)) {
          return Status::InvalidArgument("malformed #train_end header: '" +
                                         line + "'");
        }
        saw_train_end = true;
      }
      continue;
    }
    break;  // `line` now holds the header
  }
  if (line.empty()) return Status::InvalidArgument("empty CSV: " + path);

  std::vector<std::string> names;
  {
    std::stringstream ss(line);
    std::string cell;
    bool first = true;
    while (std::getline(ss, cell, ',')) {
      StripTrailingCr(&cell);
      if (first) {
        first = false;  // day column
      } else {
        if (cell.empty()) {
          return Status::InvalidArgument("empty asset name in CSV header: " +
                                         path);
        }
        names.push_back(cell);
      }
    }
  }
  if (names.empty()) {
    return Status::InvalidArgument("CSV has no asset columns: " + path);
  }

  std::vector<std::vector<double>> rows;
  while (std::getline(in, line)) {
    StripTrailingCr(&line);
    if (line.empty() || line[0] == '#') continue;
    std::stringstream ss(line);
    std::string cell;
    std::vector<double> row;
    bool first = true;
    while (std::getline(ss, cell, ',')) {
      if (first) {
        first = false;
        continue;
      }
      double v = 0.0;
      const Status parsed = ParsePriceCell(cell, &v);
      if (!parsed.ok()) return parsed;
      row.push_back(v);
    }
    if (row.size() != names.size()) {
      return Status::InvalidArgument(
          "ragged CSV row in " + path + ": expected " +
          std::to_string(names.size()) + " prices, got " +
          std::to_string(row.size()));
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return Status::InvalidArgument("CSV has no data rows");

  const int64_t num_days = static_cast<int64_t>(rows.size());
  // A split outside the panel makes every train/test-range consumer
  // misbehave later (empty test split, CHECK failures deep in training);
  // reject it here with the file context still in hand.
  if (saw_train_end && (train_end < 0 || train_end > num_days)) {
    return Status::InvalidArgument(
        "#train_end=" + std::to_string(train_end) +
        " outside [0, " + std::to_string(num_days) + "] in " + path);
  }

  PricePanel panel(num_days, static_cast<int64_t>(names.size()));
  panel.asset_names() = names;
  panel.set_train_end(train_end);
  for (size_t t = 0; t < rows.size(); ++t) {
    for (size_t i = 0; i < names.size(); ++i) {
      panel.SetClose(static_cast<int64_t>(t), static_cast<int64_t>(i),
                     rows[t][i]);
    }
  }
  return panel;
}

}  // namespace cit::market
