#include "market/simulator.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/env_config.h"
#include "math/rng.h"

namespace cit::market {
namespace {

using math::Rng;

// Scale knobs per run scale: (assets_fraction, days_fraction).
struct ScaleFactors {
  double assets;
  double days;
};

ScaleFactors FactorsForScale() {
  switch (GetRunScale()) {
    case RunScale::kFast:
      return {0.15, 0.25};
    case RunScale::kDefault:
      return {0.25, 0.45};
    case RunScale::kFull:
      return {1.0, 1.0};
  }
  return {0.25, 0.45};
}

MarketConfig ApplyScale(MarketConfig config) {
  const ScaleFactors f = FactorsForScale();
  config.num_assets = std::max<int64_t>(
      6, static_cast<int64_t>(std::lround(config.num_assets * f.assets)));
  config.train_days = std::max<int64_t>(
      320, static_cast<int64_t>(std::lround(config.train_days * f.days)));
  // Keep the test window long even at reduced scale: short backtests make
  // AR/SR too noisy to compare models (backtesting is cheap anyway).
  const int64_t test_floor = GetRunScale() == RunScale::kFast ? 100 : 220;
  config.test_days = std::max<int64_t>(
      test_floor,
      static_cast<int64_t>(std::lround(config.test_days * f.days)));
  config.forced_bear_tail = std::min(
      config.forced_bear_tail,
      config.test_days / 2);
  if (config.forced_bear_tail > 0) {
    config.forced_bear_tail = std::max<int64_t>(
        40, static_cast<int64_t>(
                std::lround(config.forced_bear_tail * f.days)));
  }
  return config;
}

double HalfLifeToRho(double half_life) {
  return std::exp(-std::log(2.0) / half_life);
}

}  // namespace

MarketConfig UsMarketConfig() {
  MarketConfig c;
  c.name = "US";
  c.num_assets = 80;         // paper: 80 constituents
  c.train_days = 2890;       // 2009-01 .. 2020-06
  c.test_days = 630;         // 2020-07 .. 2022-12
  c.seed = 20090101 + 2 * 7919;  // test index ~+0.10 with bear tail
  c.num_sectors = 8;
  c.forced_bear_tail = 250;  // the 2022 bear market
  return ApplyScale(c);
}

MarketConfig HkMarketConfig() {
  MarketConfig c;
  c.name = "HK";
  c.num_assets = 45;     // paper: 45 constituents
  c.train_days = 2890;   // 2009-01 .. 2020-06
  c.test_days = 250;     // 2020-07 .. 2021-07
  c.seed = 19970701 + 9 * 7919;  // test index ~+0.26
  c.num_sectors = 5;
  c.bull_drift = 3.5e-4;
  c.market_vol = 0.009;
  return ApplyScale(c);
}

MarketConfig ChinaMarketConfig() {
  MarketConfig c;
  c.name = "China";
  c.num_assets = 34;     // paper: 34 constituents
  c.train_days = 2890;   // 2009-01 .. 2020-06
  c.test_days = 250;     // 2020-07 .. 2021-07
  c.seed = 19901219 + 7 * 7919;  // test index ~+0.15
  c.num_sectors = 4;
  c.bull_drift = 4.5e-4;
  c.market_vol = 0.010;
  c.idio_vol = 0.012;
  return ApplyScale(c);
}

PricePanel SimulateMarket(const MarketConfig& config) {
  const int64_t days = config.num_days();
  const int64_t m = config.num_assets;
  CIT_CHECK_GT(days, 1);
  CIT_CHECK_GT(m, 0);
  Rng rng(config.seed);

  // Static per-asset structure.
  std::vector<double> beta(m);
  std::vector<int64_t> sector(m);
  for (int64_t i = 0; i < m; ++i) {
    beta[i] = config.market_beta_mean +
              config.market_beta_spread * (2.0 * rng.Uniform() - 1.0);
    sector[i] = i % std::max<int64_t>(1, config.num_sectors);
  }

  // State: horizon momentum components (AR(1) on returns), per-asset
  // drift, sector factor levels, regime of the market factor.
  std::vector<double> comp_long(m, 0.0);
  std::vector<double> comp_mid(m, 0.0);
  std::vector<double> comp_short(m, 0.0);
  std::vector<double> drift(m, 0.0);
  std::vector<double> event_drift(m, 0.0);
  const double rho_event = HalfLifeToRho(config.jump_drift_half_life);
  std::vector<double> sector_level(
      std::max<int64_t>(1, config.num_sectors), 0.0);
  const double rho_sector = HalfLifeToRho(32.0);

  std::vector<double> log_price(m, 0.0);
  PricePanel panel(days, m);
  panel.set_name(config.name);
  panel.set_train_end(config.train_days);

  bool bull = true;
  for (int64_t t = 0; t < days; ++t) {
    // Regime transition (or forced bear tail).
    if (config.forced_bear_tail > 0 && t >= days - config.forced_bear_tail) {
      bull = false;
    } else {
      const double stay =
          bull ? config.bull_stay_prob : config.bear_stay_prob;
      if (rng.Uniform() > stay) bull = !bull;
    }
    const double market_ret =
        (bull ? config.bull_drift : config.bear_drift) +
        config.market_vol * rng.Normal();

    std::vector<double> sector_increment(sector_level.size());
    for (size_t s = 0; s < sector_level.size(); ++s) {
      const double prev = sector_level[s];
      sector_level[s] = rho_sector * prev + config.sector_vol * rng.Normal();
      sector_increment[s] = sector_level[s] - prev;
    }

    for (int64_t i = 0; i < m; ++i) {
      // Horizon momentum components: AR(1) on returns, so each band's
      // returns are positively autocorrelated at its own time scale.
      comp_long[i] =
          config.long_phi * comp_long[i] + config.long_vol * rng.Normal();
      comp_mid[i] =
          config.mid_phi * comp_mid[i] + config.mid_vol * rng.Normal();
      comp_short[i] = config.short_phi * comp_short[i] +
                      config.short_vol * rng.Normal();
      drift[i] = config.drift_persistence * drift[i] +
                 config.drift_vol * rng.Normal();

      // News jumps with continuation: the jump hits immediately and seeds
      // a same-direction drift that decays over jump_drift_half_life days.
      event_drift[i] *= rho_event;
      double jump = 0.0;
      if (config.jump_prob > 0.0 && rng.Uniform() < config.jump_prob) {
        jump = config.jump_vol * rng.Normal();
        event_drift[i] += config.jump_drift_fraction * jump;
      }

      const double ret = jump + event_drift[i] + drift[i] +
                         beta[i] * market_ret +
                         sector_increment[sector[i]] + comp_long[i] +
                         comp_mid[i] + comp_short[i] +
                         config.idio_vol * rng.Normal();
      log_price[i] += ret;
      panel.SetClose(t, i, 100.0 * std::exp(log_price[i]));
    }
  }
  return panel;
}

}  // namespace cit::market
