#include "market/simulator.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/env_config.h"
#include "math/rng.h"

namespace cit::market {
namespace {

using math::Rng;

// Scale knobs per run scale: (assets_fraction, days_fraction).
struct ScaleFactors {
  double assets;
  double days;
};

ScaleFactors FactorsForScale() {
  switch (GetRunScale()) {
    case RunScale::kFast:
      return {0.15, 0.25};
    case RunScale::kDefault:
      return {0.25, 0.45};
    case RunScale::kFull:
      return {1.0, 1.0};
  }
  return {0.25, 0.45};
}

MarketConfig ApplyScale(MarketConfig config) {
  const ScaleFactors f = FactorsForScale();
  config.num_assets = std::max<int64_t>(
      6, static_cast<int64_t>(std::lround(config.num_assets * f.assets)));
  config.train_days = std::max<int64_t>(
      320, static_cast<int64_t>(std::lround(config.train_days * f.days)));
  // Keep the test window long even at reduced scale: short backtests make
  // AR/SR too noisy to compare models (backtesting is cheap anyway).
  const int64_t test_floor = GetRunScale() == RunScale::kFast ? 100 : 220;
  config.test_days = std::max<int64_t>(
      test_floor,
      static_cast<int64_t>(std::lround(config.test_days * f.days)));
  config.forced_bear_tail = std::min(
      config.forced_bear_tail,
      config.test_days / 2);
  if (config.forced_bear_tail > 0) {
    config.forced_bear_tail = std::max<int64_t>(
        40, static_cast<int64_t>(
                std::lround(config.forced_bear_tail * f.days)));
  }
  return config;
}

double HalfLifeToRho(double half_life) {
  return std::exp(-std::log(2.0) / half_life);
}

}  // namespace

MarketConfig UsMarketConfig() {
  MarketConfig c;
  c.name = "US";
  c.num_assets = 80;         // paper: 80 constituents
  c.train_days = 2890;       // 2009-01 .. 2020-06
  c.test_days = 630;         // 2020-07 .. 2022-12
  c.seed = 20090101 + 2 * 7919;  // test index ~+0.10 with bear tail
  c.num_sectors = 8;
  c.forced_bear_tail = 250;  // the 2022 bear market
  return ApplyScale(c);
}

MarketConfig HkMarketConfig() {
  MarketConfig c;
  c.name = "HK";
  c.num_assets = 45;     // paper: 45 constituents
  c.train_days = 2890;   // 2009-01 .. 2020-06
  c.test_days = 250;     // 2020-07 .. 2021-07
  c.seed = 19970701 + 9 * 7919;  // test index ~+0.26
  c.num_sectors = 5;
  c.bull_drift = 3.5e-4;
  c.market_vol = 0.009;
  return ApplyScale(c);
}

MarketConfig ChinaMarketConfig() {
  MarketConfig c;
  c.name = "China";
  c.num_assets = 34;     // paper: 34 constituents
  c.train_days = 2890;   // 2009-01 .. 2020-06
  c.test_days = 250;     // 2020-07 .. 2021-07
  c.seed = 19901219 + 7 * 7919;  // test index ~+0.15
  c.num_sectors = 4;
  c.bull_drift = 4.5e-4;
  c.market_vol = 0.010;
  c.idio_vol = 0.012;
  return ApplyScale(c);
}

MarketSim::MarketSim(const MarketConfig& config)
    : config_(config),
      days_(config.num_days()),
      rng_(config.seed),
      rho_event_(HalfLifeToRho(config.jump_drift_half_life)),
      rho_sector_(HalfLifeToRho(32.0)) {
  const int64_t m = config_.num_assets;
  CIT_CHECK_GT(days_, 1);
  CIT_CHECK_GT(m, 0);

  // Static per-asset structure.
  beta_.resize(m);
  sector_.resize(m);
  for (int64_t i = 0; i < m; ++i) {
    beta_[i] = config_.market_beta_mean +
               config_.market_beta_spread * (2.0 * rng_.Uniform() - 1.0);
    sector_[i] = i % std::max<int64_t>(1, config_.num_sectors);
  }

  // State: horizon momentum components (AR(1) on returns), per-asset
  // drift, sector factor levels, regime of the market factor.
  comp_long_.assign(m, 0.0);
  comp_mid_.assign(m, 0.0);
  comp_short_.assign(m, 0.0);
  drift_.assign(m, 0.0);
  event_drift_.assign(m, 0.0);
  sector_level_.assign(std::max<int64_t>(1, config_.num_sectors), 0.0);
  log_price_.assign(m, 0.0);
}

void MarketSim::StepDay(double* out_row) {
  CIT_CHECK_LT(t_, days_);
  const int64_t t = t_;
  const int64_t m = config_.num_assets;

  // Regime transition (or forced bear tail).
  if (config_.forced_bear_tail > 0 &&
      t >= days_ - config_.forced_bear_tail) {
    bull_ = false;
  } else {
    const double stay =
        bull_ ? config_.bull_stay_prob : config_.bear_stay_prob;
    if (rng_.Uniform() > stay) bull_ = !bull_;
  }
  const double market_ret =
      (bull_ ? config_.bull_drift : config_.bear_drift) +
      config_.market_vol * rng_.Normal();

  std::vector<double> sector_increment(sector_level_.size());
  for (size_t s = 0; s < sector_level_.size(); ++s) {
    const double prev = sector_level_[s];
    sector_level_[s] =
        rho_sector_ * prev + config_.sector_vol * rng_.Normal();
    sector_increment[s] = sector_level_[s] - prev;
  }

  for (int64_t i = 0; i < m; ++i) {
    // Horizon momentum components: AR(1) on returns, so each band's
    // returns are positively autocorrelated at its own time scale.
    comp_long_[i] =
        config_.long_phi * comp_long_[i] + config_.long_vol * rng_.Normal();
    comp_mid_[i] =
        config_.mid_phi * comp_mid_[i] + config_.mid_vol * rng_.Normal();
    comp_short_[i] = config_.short_phi * comp_short_[i] +
                     config_.short_vol * rng_.Normal();
    drift_[i] = config_.drift_persistence * drift_[i] +
                config_.drift_vol * rng_.Normal();

    // News jumps with continuation: the jump hits immediately and seeds
    // a same-direction drift that decays over jump_drift_half_life days.
    event_drift_[i] *= rho_event_;
    double jump = 0.0;
    if (config_.jump_prob > 0.0 && rng_.Uniform() < config_.jump_prob) {
      jump = config_.jump_vol * rng_.Normal();
      event_drift_[i] += config_.jump_drift_fraction * jump;
    }

    const double ret = jump + event_drift_[i] + drift_[i] +
                       beta_[i] * market_ret +
                       sector_increment[sector_[i]] + comp_long_[i] +
                       comp_mid_[i] + comp_short_[i] +
                       config_.idio_vol * rng_.Normal();
    log_price_[i] += ret;
    out_row[i] = 100.0 * std::exp(log_price_[i]);
  }
  ++t_;
}

PricePanel SimulateMarket(const MarketConfig& config) {
  const int64_t days = config.num_days();
  const int64_t m = config.num_assets;
  MarketSim sim(config);

  PricePanel panel(days, m);
  panel.set_name(config.name);
  panel.set_train_end(config.train_days);

  std::vector<double> row(m);
  for (int64_t t = 0; t < days; ++t) {
    sim.StepDay(row.data());
    for (int64_t i = 0; i < m; ++i) panel.SetClose(t, i, row[i]);
  }
  return panel;
}

}  // namespace cit::market
