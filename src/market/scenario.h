#ifndef CIT_MARKET_SCENARIO_H_
#define CIT_MARKET_SCENARIO_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "market/source.h"

namespace cit::market {

// ---------------------------------------------------------------------------
// Named stress scenarios as composable, deterministic panel transforms.
// A ScenarioSource decorates any PanelSource with a stack of transforms;
// each transform rewrites one day's close row as a pure function of the
// stack-input data (no RNG), so chunks are identical regardless of access
// order or thread — the same determinism contract as every other source.
//
// Built-in presets (see README for the parameter table):
//   flash_crash            multi-day slide on a subset of assets, with
//                          optional recovery ramp; no recovery models
//                          post-jump continuation (OLMAR's nemesis)
//   correlation_breakdown  compresses cross-sectional dispersion toward
//                          the equal-weight market's cumulative return —
//                          diversification stops working
//   liquidity_hole         widens the env's proportional transaction cost
//                          by `cost_mult` inside a day window; prices are
//                          untouched
//   halt                   freezes (stale quote) or zeroes a set of
//                          assets' quotes for a window; length=0 delists
//                          to the end of the panel
//   regime_flip            inverts post-flip cumulative returns around
//                          the flip day: winners become losers, momentum
//                          becomes reversal
// ---------------------------------------------------------------------------

// A parsed scenario invocation: preset name + numeric parameters.
struct ScenarioSpec {
  std::string name;
  std::map<std::string, double> params;  // ordered: stable formatting
};

// One transform in a stack. Day-local contract: Apply rewrites the close
// row of `day` in place; on entry `row` holds the stack-input values for
// that day, and `input` reads the stack-input panel at *other* days
// (reference anchors). Implementations must be pure functions of
// (input, day, params) — no RNG, no mutable state — so the decorated
// source stays deterministic under any access order.
class ScenarioTransform {
 public:
  // Read access to the transform's input level (the base source with all
  // preceding stack transforms applied).
  class Input {
   public:
    virtual ~Input() = default;
    virtual double Close(int64_t day, int64_t asset) const = 0;
    virtual int64_t num_days() const = 0;
    virtual int64_t num_assets() const = 0;
    virtual int64_t train_end() const = 0;
  };

  virtual ~ScenarioTransform() = default;
  virtual const std::string& name() const = 0;
  virtual void Apply(const Input& input, int64_t day, double* row) const = 0;
  // Scales the env's proportional transaction cost at `day` (liquidity
  // stress); multiplicative across the stack.
  virtual double CostMultiplier(int64_t day) const {
    (void)day;
    return 1.0;
  }
};

using ScenarioFactory =
    std::function<Result<std::unique_ptr<ScenarioTransform>>(
        const ScenarioSpec&)>;

// Registers a named scenario preset (replaces an existing registration).
// The built-in presets above are pre-registered.
void RegisterScenario(const std::string& name, ScenarioFactory factory);

// Sorted names of all registered presets.
std::vector<std::string> RegisteredScenarioNames();

// Instantiates one transform; rejects unknown presets and unknown or
// out-of-range parameters.
Result<std::unique_ptr<ScenarioTransform>> MakeScenarioTransform(
    const ScenarioSpec& spec);

// Parses a transform stack from
//   "name:key=value,key=value|name2|name3:key=value"
// (empty text = empty stack). Values are doubles.
Result<std::vector<ScenarioSpec>> ParseScenarioStack(const std::string& text);

// Canonical text form of a stack (inverse of ParseScenarioStack).
std::string FormatScenarioStack(const std::vector<ScenarioSpec>& stack);

// Decorates `base` with a transform stack. Chunking mirrors the base
// source; each fetched chunk is materialized by evaluating the stack
// day-by-day, memoizing reference-anchor rows. `base` is borrowed and
// must outlive the ScenarioSource; it may be shared with other consumers
// (FetchChunk is thread-safe all the way down).
class ScenarioSource : public PanelSource {
 public:
  ScenarioSource(PanelSource* base,
                 std::vector<std::unique_ptr<ScenarioTransform>> stack);

  // Convenience: parse + instantiate + decorate.
  static Result<std::unique_ptr<ScenarioSource>> Make(
      PanelSource* base, const std::vector<ScenarioSpec>& stack);

  const PanelMeta& meta() const override { return meta_; }
  int64_t chunk_days() const override { return base_->chunk_days(); }
  std::shared_ptr<const PanelChunk> FetchChunk(int64_t index) override;
  void Prefetch(int64_t first_day, int64_t last_day) override {
    base_->Prefetch(first_day, last_day);
  }
  double CostMultiplier(int64_t day) const override;

 private:
  class LevelInput;

  // Fills `row` with the close row of `day` after the first `level`
  // transforms. mu_ held.
  void EvalRow(int64_t day, size_t level, double* row);

  PanelSource* base_;  // not owned
  std::vector<std::unique_ptr<ScenarioTransform>> stack_;
  PanelMeta meta_;

  std::mutex mu_;
  PanelView base_view_;  // guarded by mu_
  // Memoized anchor rows requested through Input::Close, keyed by
  // (level, day). Anchors are a handful of fixed days per transform, so
  // this stays small.
  std::unordered_map<uint64_t, std::vector<double>> anchor_rows_;
};

}  // namespace cit::market

#endif  // CIT_MARKET_SCENARIO_H_
