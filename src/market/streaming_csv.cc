#include "market/streaming_csv.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "market/csv_parse.h"

namespace cit::market {

using csv_internal::ParseInt64;
using csv_internal::ParsePriceCell;
using csv_internal::StripTrailingCr;

StreamingCsvSource::StreamingCsvSource(std::string path,
                                       StreamingCsvOptions options)
    : path_(std::move(path)), options_(options) {}

StreamingCsvSource::~StreamingCsvSource() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

Result<std::unique_ptr<StreamingCsvSource>> StreamingCsvSource::Open(
    const std::string& path, StreamingCsvOptions options) {
  if (options.chunk_days < 1) {
    return Status::InvalidArgument("chunk_days must be >= 1");
  }
  if (options.max_resident_chunks < 1) {
    return Status::InvalidArgument("max_resident_chunks must be >= 1");
  }
  std::unique_ptr<StreamingCsvSource> source(
      new StreamingCsvSource(path, options));
  const Status indexed = source->IndexFile();
  if (!indexed.ok()) return indexed;
  if (options.prefetch) {
    source->worker_ = std::thread([raw = source.get()] { raw->WorkerLoop(); });
  }
  return source;
}

Status StreamingCsvSource::IndexFile() {
  std::ifstream in(path_);
  if (!in) return Status::IoError("cannot open for reading: " + path_);

  int64_t train_end = 0;
  bool saw_train_end = false;
  std::string line;
  // Optional comment lines before the header.
  while (std::getline(in, line)) {
    StripTrailingCr(&line);
    if (line.empty()) continue;
    if (line[0] == '#') {
      const std::string key = "#train_end=";
      if (line.rfind(key, 0) == 0) {
        if (!ParseInt64(line.substr(key.size()), &train_end)) {
          return Status::InvalidArgument("malformed #train_end header: '" +
                                         line + "'");
        }
        saw_train_end = true;
      }
      continue;
    }
    break;  // `line` now holds the header
  }
  if (line.empty()) return Status::InvalidArgument("empty CSV: " + path_);

  std::vector<std::string> names;
  {
    std::stringstream ss(line);
    std::string cell;
    bool first = true;
    while (std::getline(ss, cell, ',')) {
      StripTrailingCr(&cell);
      if (first) {
        first = false;  // day column
      } else {
        if (cell.empty()) {
          return Status::InvalidArgument("empty asset name in CSV header: " +
                                         path_);
        }
        names.push_back(cell);
      }
    }
  }
  if (names.empty()) {
    return Status::InvalidArgument("CSV has no asset columns: " + path_);
  }

  // Validate every data row now — FetchChunk has no error channel, so a
  // malformed cell must be rejected here, with the file context in hand,
  // not mid-backtest. Memory stays O(1): rows are parsed and discarded;
  // only the byte offset of each chunk's first row is kept.
  int64_t num_days = 0;
  int64_t offset = static_cast<int64_t>(in.tellg());
  while (std::getline(in, line)) {
    StripTrailingCr(&line);
    if (!line.empty() && line[0] != '#') {
      std::stringstream ss(line);
      std::string cell;
      size_t cells = 0;
      bool first = true;
      while (std::getline(ss, cell, ',')) {
        if (first) {
          first = false;
          continue;
        }
        double v = 0.0;
        const Status parsed = ParsePriceCell(cell, &v);
        if (!parsed.ok()) return parsed;
        ++cells;
      }
      if (cells != names.size()) {
        return Status::InvalidArgument(
            "ragged CSV row in " + path_ + ": expected " +
            std::to_string(names.size()) + " prices, got " +
            std::to_string(cells));
      }
      if (num_days % options_.chunk_days == 0) {
        chunk_offsets_.push_back(offset);
      }
      ++num_days;
    }
    offset = static_cast<int64_t>(in.tellg());
  }
  if (num_days == 0) return Status::InvalidArgument("CSV has no data rows");
  if (saw_train_end && (train_end < 0 || train_end > num_days)) {
    return Status::InvalidArgument(
        "#train_end=" + std::to_string(train_end) + " outside [0, " +
        std::to_string(num_days) + "] in " + path_);
  }

  meta_.num_days = num_days;
  meta_.num_assets = static_cast<int64_t>(names.size());
  meta_.train_end = train_end;
  meta_.name = path_;
  meta_.asset_names = std::move(names);
  return Status::OK();
}

std::shared_ptr<const PanelChunk> StreamingCsvSource::LoadChunk(
    int64_t index) const {
  CIT_CHECK(index >= 0 &&
            index < static_cast<int64_t>(chunk_offsets_.size()));
  const int64_t start_day = index * options_.chunk_days;
  const int64_t days =
      std::min(options_.chunk_days, meta_.num_days - start_day);
  const int64_t m = meta_.num_assets;

  auto chunk = std::make_shared<PanelChunk>();
  chunk->start_day = start_day;
  chunk->num_days = days;
  chunk->num_assets = m;
  chunk->owned.resize(static_cast<size_t>(days * m));

  std::ifstream in(path_);
  CIT_CHECK_MSG(static_cast<bool>(in), "CSV vanished between Open and fetch");
  in.seekg(chunk_offsets_[index]);
  std::string line;
  int64_t row = 0;
  while (row < days && std::getline(in, line)) {
    StripTrailingCr(&line);
    if (line.empty() || line[0] == '#') continue;
    std::stringstream ss(line);
    std::string cell;
    int64_t col = 0;
    bool first = true;
    while (std::getline(ss, cell, ',')) {
      if (first) {
        first = false;
        continue;
      }
      double v = 0.0;
      // Cells were validated at Open; a failure here means the file
      // changed underneath us.
      CIT_CHECK_MSG(ParsePriceCell(cell, &v).ok(),
                    "CSV changed after Open (malformed cell)");
      CIT_CHECK_LT(col, m);
      chunk->owned[row * m + col] = v;
      ++col;
    }
    CIT_CHECK_EQ(col, m);
    ++row;
  }
  CIT_CHECK_EQ(row, days);
  chunk->data = chunk->owned.data();
  return chunk;
}

void StreamingCsvSource::TouchLocked(int64_t index) {
  auto pos = lru_pos_.find(index);
  if (pos != lru_pos_.end()) lru_.erase(pos->second);
  lru_.push_front(index);
  lru_pos_[index] = lru_.begin();
}

std::shared_ptr<const PanelChunk> StreamingCsvSource::Insert(
    int64_t index, std::shared_ptr<const PanelChunk> chunk) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = resident_.find(index);
  if (it != resident_.end()) {
    // Raced with the prefetch worker; keep the incumbent (identical data).
    TouchLocked(index);
    return it->second;
  }
  resident_bytes_ += chunk->OwnedBytes();
  peak_resident_bytes_ = std::max(peak_resident_bytes_, resident_bytes_);
  ++chunk_loads_;
  resident_[index] = chunk;
  TouchLocked(index);
  while (static_cast<int64_t>(resident_.size()) >
         options_.max_resident_chunks) {
    const int64_t victim = lru_.back();
    lru_.pop_back();
    lru_pos_.erase(victim);
    auto vit = resident_.find(victim);
    resident_bytes_ -= vit->second->OwnedBytes();
    resident_.erase(vit);
  }
  return chunk;
}

std::shared_ptr<const PanelChunk> StreamingCsvSource::FetchChunk(
    int64_t index) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = resident_.find(index);
    if (it != resident_.end()) {
      ++chunk_hits_;
      TouchLocked(index);
      return it->second;
    }
  }
  // Parse outside the lock so concurrent consumers and the prefetch
  // worker never serialize on file I/O. A duplicate concurrent load of
  // the same chunk is benign: both parse identical bytes and Insert
  // keeps the first.
  return Insert(index, LoadChunk(index));
}

void StreamingCsvSource::Prefetch(int64_t first_day, int64_t last_day) {
  if (!options_.prefetch) return;
  first_day = std::max<int64_t>(0, first_day);
  last_day = std::min(last_day, meta_.num_days - 1);
  if (first_day > last_day) return;
  const int64_t first_chunk = first_day / options_.chunk_days;
  const int64_t last_chunk = last_day / options_.chunk_days;
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int64_t c = first_chunk; c <= last_chunk; ++c) {
      if (resident_.count(c) != 0) continue;
      if (std::find(prefetch_queue_.begin(), prefetch_queue_.end(), c) !=
          prefetch_queue_.end()) {
        continue;
      }
      prefetch_queue_.push_back(c);
      notify = true;
    }
  }
  if (notify) cv_.notify_one();
}

void StreamingCsvSource::WorkerLoop() {
  for (;;) {
    int64_t index = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !prefetch_queue_.empty(); });
      if (stop_) return;
      index = prefetch_queue_.front();
      prefetch_queue_.pop_front();
      if (resident_.count(index) != 0) continue;
    }
    Insert(index, LoadChunk(index));
  }
}

int64_t StreamingCsvSource::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

int64_t StreamingCsvSource::peak_resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_resident_bytes_;
}

int64_t StreamingCsvSource::budget_bytes() const {
  return options_.max_resident_chunks * options_.chunk_days *
         meta_.num_assets * static_cast<int64_t>(sizeof(double));
}

int64_t StreamingCsvSource::chunk_loads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return chunk_loads_;
}

int64_t StreamingCsvSource::chunk_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return chunk_hits_;
}

}  // namespace cit::market
