#ifndef CIT_MARKET_CSV_H_
#define CIT_MARKET_CSV_H_

#include <string>

#include "common/status.h"
#include "market/panel.h"

namespace cit::market {

// Writes a panel as CSV: header "day,<asset0>,<asset1>,..." followed by one
// row per day of closing prices. A "#train_end=<N>" comment line precedes
// the header so a round trip preserves the split.
Status SavePanelCsv(const PricePanel& panel, const std::string& path);

// Loads a panel saved by SavePanelCsv, or any CSV whose first column is a
// day key and remaining columns are positive closing prices. Real market
// data exported from e.g. Yahoo Finance in this layout plugs in directly.
Result<PricePanel> LoadPanelCsv(const std::string& path);

}  // namespace cit::market

#endif  // CIT_MARKET_CSV_H_
