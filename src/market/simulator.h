#ifndef CIT_MARKET_SIMULATOR_H_
#define CIT_MARKET_SIMULATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "market/panel.h"
#include "math/rng.h"

namespace cit::market {

// Configuration of the synthetic market generator. The generator replaces
// the paper's Yahoo-Finance data (see DESIGN.md, substitution table): each
// asset's log price superposes
//   * a two-state (bull/bear) Markov market factor with regime drifts,
//   * sector factors shared by groups of assets,
//   * per-asset mean-reverting components at three characteristic horizons
//     (Ornstein-Uhlenbeck with long/mid/short half-lives) — the structure
//     the fractal market hypothesis posits and the DWT separates,
//   * a slowly-varying per-asset drift (long-horizon momentum), and
//   * idiosyncratic white noise (the unpredictable part).
struct MarketConfig {
  std::string name = "synthetic";
  int64_t num_assets = 20;
  int64_t train_days = 1200;
  int64_t test_days = 300;
  uint64_t seed = 7;

  int64_t num_sectors = 4;

  // Regime dynamics of the market factor (daily log-return drifts).
  double bull_drift = 4e-4;
  double bear_drift = -8e-4;
  double bull_stay_prob = 0.995;
  double bear_stay_prob = 0.98;
  double market_vol = 0.008;
  // When >0, the final `forced_bear_tail` days are pinned to the bear
  // regime (models the 2022 U.S. bear market in the paper's test window).
  int64_t forced_bear_tail = 0;

  // Momentum components at three characteristic horizons: each is an AR(1)
  // process on *returns* (r_b(t) = phi_b r_b(t-1) + vol_b eps), so returns
  // are positively autocorrelated at time scale ~1/(1-phi_b). This carries
  // the partially-predictable multi-horizon structure the fractal market
  // hypothesis posits (and the DWT separates), and it makes naive
  // mean-reversion — OLMAR's bet — lose, as in the paper's Table III.
  // The long-horizon component carries most of the exploitable structure:
  // short receptive fields (e.g. a 7-day conv) cannot see it, while the
  // DWT's low-frequency band exposes it cleanly — the paper's core story.
  double long_phi = 0.98;
  double mid_phi = 0.90;
  double short_phi = 0.45;
  double long_vol = 0.0006;
  double mid_vol = 0.0008;
  double short_vol = 0.0020;

  // Persistent per-asset drift (AR(1) on the drift itself) — the momentum
  // that differentiates winners from losers in the cross-section.
  double drift_persistence = 0.9996;
  double drift_vol = 2.5e-5;

  // Loadings and idiosyncratic noise.
  double market_beta_mean = 1.0;
  double market_beta_spread = 0.4;
  double sector_vol = 0.004;
  double idio_vol = 0.007;

  // News-jump events with post-event continuation (drift in the jump's
  // direction decaying over ~`jump_drift_half_life` days). This is what
  // breaks naive mean-reversion strategies on real markets — buying a
  // crashed asset while the bad news keeps playing out — and is why OLMAR
  // loses in the paper's Table III.
  double jump_prob = 0.015;            // per asset-day
  double jump_vol = 0.025;             // jump magnitude stddev
  double jump_drift_fraction = 0.015;   // initial daily continuation drift
                                       // as a fraction of the jump
  double jump_drift_half_life = 8.0;

  int64_t num_days() const { return train_days + test_days; }
};

// Named presets mirroring the paper's three datasets (Table II). Asset
// counts and train/test lengths scale with CIT_FAST / CIT_FULL; CIT_FULL
// reproduces the paper's exact counts (80/45/34 assets).
MarketConfig UsMarketConfig();
MarketConfig HkMarketConfig();
MarketConfig ChinaMarketConfig();

// The generator as an explicit day-stepper: construction draws the static
// per-asset structure, each StepDay emits one day's closes and advances
// the dynamic state. The RNG draw order is exactly SimulateMarket's, so
// stepping day 0..T-1 reproduces SimulateMarket(config) bitwise. The
// whole state (RNG included) is a small value type — copies are
// checkpoints, which is how SimulatorSource serves random chunk access
// deterministically without regenerating from day 0 every time.
class MarketSim {
 public:
  explicit MarketSim(const MarketConfig& config);

  // Writes `num_assets` closes for day `next_day()` into `out_row` and
  // advances to the next day.
  void StepDay(double* out_row);

  int64_t next_day() const { return t_; }
  const MarketConfig& config() const { return config_; }

 private:
  MarketConfig config_;
  int64_t days_;
  math::Rng rng_;
  double rho_event_;
  double rho_sector_;
  std::vector<double> beta_;
  std::vector<int64_t> sector_;
  std::vector<double> comp_long_, comp_mid_, comp_short_;
  std::vector<double> drift_, event_drift_;
  std::vector<double> sector_level_;
  std::vector<double> log_price_;
  bool bull_ = true;
  int64_t t_ = 0;
};

// Generates a price panel from the config. Deterministic given config.seed.
PricePanel SimulateMarket(const MarketConfig& config);

}  // namespace cit::market

#endif  // CIT_MARKET_SIMULATOR_H_
