#ifndef CIT_MARKET_SIM_SOURCE_H_
#define CIT_MARKET_SIM_SOURCE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "market/simulator.h"
#include "market/source.h"

namespace cit::market {

// Generates simulator chunks on demand, bitwise identical to
// SimulateMarket(config) for any chunk size and any access order.
//
// The generator is a sequential state machine (one RNG stream drives all
// days), so "any chunk independent of access order" is achieved with a
// checkpoint chain rather than per-day counter-split draws: the source
// lazily advances a MarketSim through the panel, snapshotting the (small,
// copyable) state at every chunk boundary; fetching chunk c restores
// snapshot c into a scratch sim and replays just that chunk. Checkpoints
// are extended strictly in order, so the emitted prices never depend on
// which chunk was asked for first. (True counter-split per-day draws would
// reorder the RNG stream and change every simulated panel the existing
// tests and benches pin — see DESIGN.md §11.)
class SimulatorSource : public PanelSource {
 public:
  explicit SimulatorSource(const MarketConfig& config,
                           int64_t chunk_days = 128);

  const PanelMeta& meta() const override { return meta_; }
  int64_t chunk_days() const override { return chunk_days_; }
  std::shared_ptr<const PanelChunk> FetchChunk(int64_t index) override;

 private:
  // Extends the checkpoint chain so snapshots_[index] exists. mu_ held.
  void ExtendTo(int64_t index);

  MarketConfig config_;
  int64_t chunk_days_;
  PanelMeta meta_;

  std::mutex mu_;
  // snapshots_[c] = sim state poised to generate day c * chunk_days_.
  std::vector<MarketSim> snapshots_;
  MarketSim frontier_;  // advanced to the next unsnapshotted boundary
};

}  // namespace cit::market

#endif  // CIT_MARKET_SIM_SOURCE_H_
