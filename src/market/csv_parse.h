#ifndef CIT_MARKET_CSV_PARSE_H_
#define CIT_MARKET_CSV_PARSE_H_

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/status.h"

// Hardened cell-level CSV parsing, shared by the load-everything
// LoadPanelCsv and the chunked StreamingCsvSource so both produce
// bit-identical doubles from the same file (the streaming-equivalence
// gate depends on this).

namespace cit::market::csv_internal {

// CRLF files reach us with the '\r' still attached (getline only strips
// '\n'); without this the last asset name and every row's last cell carry
// a carriage return that used to silently corrupt names and parses.
inline void StripTrailingCr(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

// Full-string integer parse; atoll's silent 0-on-garbage is exactly the
// bug this replaces.
inline bool ParseInt64(const std::string& text, int64_t* out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

// Full-cell price parse: rejects empty cells, partial parses ("12abc"),
// non-finite values (strtod happily produces NaN/Inf from "nan"/"inf",
// which the old `v <= 0` guard let through), and non-positive prices.
inline Status ParsePriceCell(const std::string& cell, double* out) {
  if (cell.empty()) {
    return Status::InvalidArgument("empty price cell in CSV");
  }
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (end != cell.c_str() + cell.size()) {
    return Status::InvalidArgument("non-numeric price cell: '" + cell + "'");
  }
  if (!std::isfinite(v)) {
    return Status::InvalidArgument("non-finite price in CSV: '" + cell + "'");
  }
  if (v <= 0.0) {
    return Status::InvalidArgument("non-positive price in CSV: '" + cell +
                                   "'");
  }
  *out = v;
  return Status::OK();
}

}  // namespace cit::market::csv_internal

#endif  // CIT_MARKET_CSV_PARSE_H_
