#include "obs/trace.h"

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/telemetry.h"

namespace cit::obs {

namespace {

struct TraceEvent {
  const char* name;
  uint64_t start_us;
  uint64_t dur_us;
};

struct ThreadBuf {
  std::mutex mu;  // uncontended except when Stop/Start sweeps the buffer
  uint32_t tid;
  std::vector<TraceEvent> events;
  uint64_t dropped = 0;
};

// tmp + flush + fsync + rename, the same discipline as checkpoint writes;
// a crash leaves either the old trace or the new one, never a torn file.
bool AtomicWriteText(const std::string& path, const std::string& body) {
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  ok = std::fflush(f) == 0 && ok;
  if (ok) ok = ::fsync(::fileno(f)) == 0;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

struct TraceWriter::Impl {
  std::mutex mu;  // guards the buffer list and t0
  std::vector<std::unique_ptr<ThreadBuf>> bufs;
  uint64_t t0 = 0;

  ThreadBuf* BufForThisThread() {
    thread_local ThreadBuf* t_buf = nullptr;
    if (t_buf == nullptr) {
      auto owned = std::make_unique<ThreadBuf>();
      t_buf = owned.get();
      std::lock_guard<std::mutex> lock(mu);
      t_buf->tid = static_cast<uint32_t>(bufs.size());
      bufs.push_back(std::move(owned));
    }
    return t_buf;
  }
};

TraceWriter::TraceWriter() : impl_(new Impl) {}

TraceWriter& TraceWriter::Global() {
  static TraceWriter* g = new TraceWriter;  // leaked, like the Registry
  return *g;
}

void TraceWriter::Start() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& buf : impl_->bufs) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
    buf->dropped = 0;
  }
  impl_->t0 = MonotonicMicros();
  active_.store(true, std::memory_order_relaxed);
}

void TraceWriter::Record(const char* name, uint64_t start_us,
                         uint64_t dur_us) {
  ThreadBuf* buf = impl_->BufForThisThread();
  std::lock_guard<std::mutex> lock(buf->mu);
  if (buf->events.size() >= kMaxEventsPerThread) {
    ++buf->dropped;
    return;
  }
  buf->events.push_back(TraceEvent{name, start_us, dur_us});
}

bool TraceWriter::Stop(const std::string& path) {
  active_.store(false, std::memory_order_relaxed);
  std::string body;
  body.reserve(1 << 16);
  body += "{\"traceEvents\":[";
  uint64_t dropped = 0;
  bool first = true;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    const uint64_t t0 = impl_->t0;
    for (auto& buf : impl_->bufs) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      for (const TraceEvent& e : buf->events) {
        if (!first) body.push_back(',');
        first = false;
        uint64_t ts = e.start_us >= t0 ? e.start_us - t0 : 0;
        body += "{\"name\":\"";
        body += e.name;  // span names are literals without JSON-special chars
        body += "\",\"ph\":\"X\",\"pid\":0,\"tid\":";
        body += std::to_string(buf->tid);
        body += ",\"ts\":";
        body += std::to_string(ts);
        body += ",\"dur\":";
        body += std::to_string(e.dur_us);
        body += "}";
      }
      dropped += buf->dropped;
      buf->events.clear();
      buf->dropped = 0;
    }
  }
  body += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":\"";
  body += std::to_string(dropped);
  body += "\"}}";
  return AtomicWriteText(path, body);
}

}  // namespace cit::obs
