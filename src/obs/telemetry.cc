#include "obs/telemetry.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "obs/trace.h"

namespace cit::obs {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

void SetEnabled(bool on) {
  if constexpr (!kCompiledIn) {
    (void)on;
    return;
  }
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

uint64_t Gauge::Encode(double v) { return std::bit_cast<uint64_t>(v); }
double Gauge::Decode(uint64_t bits) { return std::bit_cast<double>(bits); }

namespace {

int BucketOf(uint64_t sample) {
  if (sample == 0) return 0;
  int width = std::bit_width(sample);  // >= 1
  return width < Histogram::kBuckets ? width : Histogram::kBuckets - 1;
}

// Upper bound of bucket i (inclusive range end used for quantile reports).
uint64_t BucketUpper(int i) {
  if (i <= 0) return 0;
  return (uint64_t{1} << i) - 1;
}

}  // namespace

void Histogram::Record(uint64_t sample) {
  if (!Enabled()) return;
  Shard& s = shards_[internal::ThisThreadShard()];
  s.buckets[BucketOf(sample)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(sample, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (sample > seen &&
         !max_.compare_exchange_weak(seen, sample,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::Get() const {
  Snapshot out;
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    for (int i = 0; i < kBuckets; ++i) {
      out.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  out.max = max_.load(std::memory_order_relaxed);
  return out;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
  max_.store(0, std::memory_order_relaxed);
}

uint64_t Histogram::Snapshot::ApproxQuantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(q * double(count - 1));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen > rank) return i == kBuckets - 1 ? max : BucketUpper(i);
  }
  return max;
}

struct Registry::Impl {
  mutable std::mutex mu;
  // std::map: stable element addresses are required (references escape),
  // and ordered iteration keeps snapshot key order deterministic.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry::Registry() : impl_(new Impl) {
  // Env fallback so any binary can be observed without plumbing a config.
  const char* v = std::getenv("CIT_TELEMETRY");
  if (v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0')) {
    SetEnabled(true);
  }
}

Registry& Registry::Global() {
  static Registry* g = new Registry;  // leaked: outlives static destructors
  return *g;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, c] : impl_->counters) c->Reset();
  for (auto& [name, g] : impl_->gauges) g->Reset();
  for (auto& [name, h] : impl_->histograms) h->Reset();
}

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {  // JSON has no Inf/NaN
    *out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

}  // namespace

std::string Registry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out;
  out.reserve(1024);
  out += "{\"ts_us\":";
  out += std::to_string(MonotonicMicros());
  out += ",\"wall_us\":";
  out += std::to_string(WallMicros());
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : impl_->counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    out += std::to_string(c->Total());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : impl_->gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    AppendJsonDouble(&out, g->Get());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : impl_->histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    Histogram::Snapshot s = h->Get();
    out += ":{\"count\":";
    out += std::to_string(s.count);
    out += ",\"sum\":";
    out += std::to_string(s.sum);
    out += ",\"max\":";
    out += std::to_string(s.max);
    out += ",\"mean\":";
    AppendJsonDouble(&out, s.Mean());
    out += ",\"p50\":";
    out += std::to_string(s.ApproxQuantile(0.5));
    out += ",\"p99\":";
    out += std::to_string(s.ApproxQuantile(0.99));
    out += "}";
  }
  out += "}}";
  return out;
}

bool Registry::AppendSnapshotLine(const std::string& path) const {
  std::string line = SnapshotJson();
  line.push_back('\n');
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return false;
  bool ok = std::fwrite(line.data(), 1, line.size(), f) == line.size();
  ok = std::fflush(f) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

ScopedTimer::~ScopedTimer() {
  if (!armed_) return;
  uint64_t end_us = MonotonicMicros();
  uint64_t dur = end_us - start_us_;
  hist_->Record(dur);
  TraceWriter& tw = TraceWriter::Global();
  if (tw.active()) tw.Record(name_, start_us_, dur);
}

TelemetrySession::TelemetrySession(const TelemetryConfig& config)
    : resolved_(config) {
  if constexpr (!kCompiledIn) return;
  const char* trace_env = std::getenv("CIT_TRACE");
  if (trace_env != nullptr && trace_env[0] != '\0') {
    resolved_.trace_path = trace_env;
  }
  const char* metrics_env = std::getenv("CIT_METRICS");
  if (metrics_env != nullptr && metrics_env[0] != '\0') {
    resolved_.metrics_path = metrics_env;
  }
  const char* on_env = std::getenv("CIT_TELEMETRY");
  if (on_env != nullptr && on_env[0] != '\0' &&
      !(on_env[0] == '0' && on_env[1] == '\0')) {
    resolved_.enabled = true;
  }
  // A trace or metrics destination implies the run wants telemetry.
  if (!resolved_.trace_path.empty() || !resolved_.metrics_path.empty()) {
    resolved_.enabled = true;
  }
  if (!resolved_.enabled) return;
  active_ = true;
  prev_enabled_ = Enabled();
  SetEnabled(true);
  if (!resolved_.trace_path.empty()) {
    TraceWriter::Global().Start();
    tracing_ = true;
  }
}

void TelemetrySession::Tick(int64_t update_index) {
  if (!active_ || resolved_.metrics_path.empty()) return;
  if (resolved_.snapshot_every <= 0) return;
  if ((update_index + 1) % resolved_.snapshot_every != 0) return;
  Registry::Global().AppendSnapshotLine(resolved_.metrics_path);
}

TelemetrySession::~TelemetrySession() {
  if (!active_) return;
  if (!resolved_.metrics_path.empty()) {
    Registry::Global().AppendSnapshotLine(resolved_.metrics_path);
  }
  if (tracing_) TraceWriter::Global().Stop(resolved_.trace_path);
  SetEnabled(prev_enabled_);
}

}  // namespace cit::obs
