#ifndef CIT_OBS_TELEMETRY_H_
#define CIT_OBS_TELEMETRY_H_

// Low-overhead process-wide telemetry: named counters, gauges, and
// fixed-bucket histograms behind a Registry, RAII ScopedTimer spans that
// feed histograms (and the chrome://tracing writer in trace.h), and a
// TelemetrySession that drives periodic JSON-lines snapshots from a
// TelemetryConfig on the trainer configs.
//
// Cost model:
//   * Compiled out (-DCIT_OBS_DISABLED via the CIT_OBS=OFF CMake option):
//     the CIT_OBS_* macros expand to nothing — exactly zero cost.
//   * Compiled in but disabled at runtime (the default): one relaxed
//     atomic load + branch per instrumentation site; no clock reads.
//   * Enabled: counters/gauges are one relaxed fetch_add/store on a
//     per-thread shard (no contended cache line, no locks); spans add two
//     steady_clock reads.
//
// Determinism: telemetry only observes — it never feeds a value back into
// any computation, so training curves are bitwise identical with telemetry
// on, off, or compiled out, at any CIT_NUM_THREADS.
//
// This library deliberately depends on nothing else in the tree (cit_common
// links against it, so a dependency the other way would be circular).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace cit::obs {

#ifdef CIT_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

// Runtime master switch. Reading it is one relaxed load; flipping it is
// rare (TelemetrySession construction, tests, CIT_TELEMETRY=1).
inline bool Enabled() {
  if constexpr (!kCompiledIn) return false;
  return internal::g_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool on);

// Monotonic microseconds since an arbitrary process-local epoch. Used for
// durations and span timing; meaningless across processes or restarts.
inline uint64_t MonotonicMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Wall-clock microseconds since the Unix epoch (system_clock). Snapshot
// lines carry this alongside the steady stamp so a daemon's /stats output
// and archived JSON-lines files can be correlated across processes and
// restarts; durations keep using MonotonicMicros (wall time can step).
inline uint64_t WallMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// Each thread hashes onto one of kShards slots; shards are cache-line
// padded so concurrent increments from different threads never share a
// line. 16 shards cover the pool sizes this project runs (<= hardware
// concurrency, clamped in ThreadPool).
inline constexpr int kShards = 16;

namespace internal {
inline int ThisThreadShard() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t shard =
      next.fetch_add(1, std::memory_order_relaxed) %
      static_cast<uint32_t>(kShards);
  return static_cast<int>(shard);
}

struct alignas(64) U64Shard {
  std::atomic<uint64_t> v{0};
};
}  // namespace internal

// Monotonic event count (calls, FLOPs, bytes, steps...). Lock-free,
// per-thread-sharded increment path.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    if (!Enabled()) return;
    shards_[internal::ThisThreadShard()].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  uint64_t Total() const {
    uint64_t t = 0;
    for (const auto& s : shards_) t += s.v.load(std::memory_order_relaxed);
    return t;
  }
  void Reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  internal::U64Shard shards_[kShards];
};

// Last-observed scalar (loss, grad norm, queue depth...).
class Gauge {
 public:
  void Set(double v) {
    if (!Enabled()) return;
    bits_.store(Encode(v), std::memory_order_relaxed);
    set_.store(true, std::memory_order_relaxed);
  }
  double Get() const { return Decode(bits_.load(std::memory_order_relaxed)); }
  bool ever_set() const { return set_.load(std::memory_order_relaxed); }
  void Reset() {
    bits_.store(Encode(0.0), std::memory_order_relaxed);
    set_.store(false, std::memory_order_relaxed);
  }

 private:
  // double stored through its bit pattern: atomic<double> is lock-free on
  // the targets we build for, but atomic<uint64_t> is guaranteed to be.
  static uint64_t Encode(double v);
  static double Decode(uint64_t bits);
  std::atomic<uint64_t> bits_{0};
  std::atomic<bool> set_{false};
};

// Fixed power-of-two-bucket histogram over non-negative integer samples
// (typically microseconds). Bucket i counts samples whose bit width is i,
// i.e. [2^(i-1), 2^i); bucket 0 holds zeros and the last bucket is a
// catch-all. Increments are per-thread-sharded and lock-free.
class Histogram {
 public:
  static constexpr int kBuckets = 28;  // last bucket: >= 2^26 us (~67 s)

  void Record(uint64_t sample);

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    uint64_t buckets[kBuckets] = {};
    double Mean() const { return count ? double(sum) / double(count) : 0.0; }
    // Upper bound of the bucket holding quantile q in [0, 1].
    uint64_t ApproxQuantile(double q) const;
  };
  Snapshot Get() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> buckets[kBuckets] = {};
  };
  Shard shards_[kShards];
  std::atomic<uint64_t> max_{0};
};

// Process-wide registry of named instruments. Get* registers on first use
// (under a mutex — each macro site caches the reference in a function-local
// static, so the lock is taken once per site, not per event) and returns a
// stable reference that lives for the process.
class Registry {
 public:
  static Registry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // Zeroes every registered instrument (names stay registered). Tests use
  // this for isolation; the snapshot exporter does not reset.
  void ResetAll();

  // One JSON object (single line, no trailing newline) with all counters,
  // gauges and histogram summaries, stamped with both clocks:
  //   {"ts_us":<steady>, "wall_us":<unix-epoch>, "counters":{...},
  //    "gauges":{...}, "histograms":{...}}
  // ts_us is monotonic (process-local; subtract two for a duration);
  // wall_us is system_clock and stays meaningful across processes and
  // restarts — the stamp consumers of a daemon's stats endpoint need.
  // Safe to call concurrently with increments: values are relaxed-atomic
  // reads, so a snapshot taken while threads are mid-update is approximate
  // but well-formed.
  std::string SnapshotJson() const;

  // Appends SnapshotJson() + '\n' to a JSON-lines file. Returns false on
  // I/O failure.
  bool AppendSnapshotLine(const std::string& path) const;

 private:
  Registry();
  struct Impl;
  Impl* impl_;  // leaked on purpose: instruments must outlive static dtors
};

// RAII span: records elapsed microseconds into a histogram and, when a
// trace is active, emits a chrome://tracing complete event. `name` must be
// a string literal (the trace writer stores the pointer).
class ScopedTimer {
 public:
  ScopedTimer(const char* name, Histogram& hist)
      : name_(name), hist_(&hist), armed_(Enabled()),
        start_us_(armed_ ? MonotonicMicros() : 0) {}
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  Histogram* hist_;
  bool armed_;
  uint64_t start_us_;
};

// Per-run telemetry knobs, carried on every trainer config. Fields are
// overridden by environment variables so any binary (tests, bench,
// examples) can be observed without a config change:
//   CIT_TELEMETRY=1     -> enabled = true
//   CIT_TRACE=<path>    -> trace_path
//   CIT_METRICS=<path>  -> metrics_path
struct TelemetryConfig {
  bool enabled = false;       // master switch for this run
  std::string trace_path;     // chrome://tracing JSON ("" = no trace)
  std::string metrics_path;   // JSON-lines snapshots ("" = no snapshots)
  int64_t snapshot_every = 0;  // updates between snapshots (0 = final only)
};

// Scopes one observed run (a Train() call): resolves env overrides, flips
// the global enable flag for the duration, starts/stops the trace writer,
// and appends periodic + final snapshot lines. Destruction restores the
// previous enabled state, so nested/sequential runs compose.
class TelemetrySession {
 public:
  explicit TelemetrySession(const TelemetryConfig& config);
  ~TelemetrySession();

  // Call once per optimizer update with the 0-based update index; appends
  // a snapshot line every `snapshot_every` updates.
  void Tick(int64_t update_index);

  TelemetrySession(const TelemetrySession&) = delete;
  TelemetrySession& operator=(const TelemetrySession&) = delete;

 private:
  TelemetryConfig resolved_;
  bool active_ = false;        // this session turned telemetry on
  bool prev_enabled_ = false;  // state to restore
  bool tracing_ = false;
};

}  // namespace cit::obs

// Instrumentation macros. Each site pays one static-local lookup on first
// execution; afterwards the disabled-at-runtime cost is a relaxed load and
// a predictable branch. With CIT_OBS_DISABLED they expand to nothing.
#ifndef CIT_OBS_DISABLED
#define CIT_OBS_COUNT(name, delta)                                        \
  do {                                                                    \
    static ::cit::obs::Counter& cit_obs_c =                               \
        ::cit::obs::Registry::Global().GetCounter(name);                  \
    cit_obs_c.Add(static_cast<uint64_t>(delta));                          \
  } while (0)
#define CIT_OBS_GAUGE(name, value)                                        \
  do {                                                                    \
    static ::cit::obs::Gauge& cit_obs_g =                                 \
        ::cit::obs::Registry::Global().GetGauge(name);                    \
    cit_obs_g.Set(static_cast<double>(value));                            \
  } while (0)
// Records one sample into histogram `name` (no timing, no trace event).
#define CIT_OBS_HIST(name, value)                                         \
  do {                                                                    \
    static ::cit::obs::Histogram& cit_obs_hm =                            \
        ::cit::obs::Registry::Global().GetHistogram(name);                \
    cit_obs_hm.Record(static_cast<uint64_t>(value));                      \
  } while (0)
// Times the enclosing scope into histogram `name` (+ trace event).
#define CIT_OBS_SPAN(name)                                                \
  static ::cit::obs::Histogram& CIT_OBS_CAT_(cit_obs_h_, __LINE__) =      \
      ::cit::obs::Registry::Global().GetHistogram(name);                  \
  ::cit::obs::ScopedTimer CIT_OBS_CAT_(cit_obs_t_, __LINE__)(             \
      name, CIT_OBS_CAT_(cit_obs_h_, __LINE__))
#define CIT_OBS_CAT_(a, b) CIT_OBS_CAT2_(a, b)
#define CIT_OBS_CAT2_(a, b) a##b
#else
#define CIT_OBS_COUNT(name, delta) ((void)0)
#define CIT_OBS_GAUGE(name, value) ((void)0)
#define CIT_OBS_HIST(name, value) ((void)0)
#define CIT_OBS_SPAN(name) ((void)0)
#endif

#endif  // CIT_OBS_TELEMETRY_H_
