#ifndef CIT_OBS_TRACE_H_
#define CIT_OBS_TRACE_H_

// chrome://tracing-compatible trace writer. ScopedTimer spans record
// complete ("ph":"X") events into per-thread buffers while a trace is
// active; Stop() merges the buffers and writes one JSON document
// atomically (tmp file + rename, mirroring the checkpoint discipline) so
// a crash mid-flush never leaves a truncated trace behind.
//
// Load the output at chrome://tracing or https://ui.perfetto.dev.

#include <atomic>
#include <cstdint>
#include <string>

namespace cit::obs {

class TraceWriter {
 public:
  static TraceWriter& Global();

  // Begins a new trace: clears any buffered events and starts accepting
  // Record() calls. Events are timestamped relative to this call.
  void Start();

  // True while a trace is being collected (relaxed read; spans check this
  // once per event).
  bool active() const { return active_.load(std::memory_order_relaxed); }

  // Appends one complete event to the calling thread's buffer. `name`
  // must be a string literal / static storage: the pointer is kept until
  // Stop(). Timestamps are MonotonicMicros() values.
  void Record(const char* name, uint64_t start_us, uint64_t dur_us);

  // Stops collection, merges all thread buffers, and writes the JSON
  // document to `path` atomically. Returns false on I/O failure. The
  // number of dropped events (per-thread buffer overflow) is reported in
  // the trace metadata.
  bool Stop(const std::string& path);

  // Events buffered per thread before new ones are dropped; bounds memory
  // for long traced runs (64k events * 32 B = 2 MiB/thread).
  static constexpr size_t kMaxEventsPerThread = 1 << 16;

 private:
  TraceWriter();
  struct Impl;
  Impl* impl_;  // leaked: worker threads may outlive static destructors
  std::atomic<bool> active_{false};
};

}  // namespace cit::obs

#endif  // CIT_OBS_TRACE_H_
