// Horizon analysis: demonstrates the DWT band decomposition at the heart of
// the cross-insight trader (paper Sec. IV-A and Fig. 2), then trains a
// 3-policy trader and reports each horizon policy's individual trading
// style (paper Figs. 5-6).
//
// Build & run:   cmake --build build && ./build/examples/horizon_analysis
#include <cmath>
#include <cstdio>

#include "core/trader.h"
#include "env/backtest.h"
#include "market/simulator.h"
#include "signal/wavelet.h"

namespace {

double Roughness(const std::vector<double>& x) {
  double s = 0.0;
  for (size_t i = 1; i < x.size(); ++i) {
    s += (x[i] - x[i - 1]) * (x[i] - x[i - 1]);
  }
  return std::sqrt(s / (x.size() - 1));
}

}  // namespace

int main() {
  using namespace cit;

  market::MarketConfig market_cfg;
  market_cfg.num_assets = 8;
  market_cfg.train_days = 600;
  market_cfg.test_days = 200;
  market_cfg.seed = 11;
  const market::PricePanel panel = market::SimulateMarket(market_cfg);

  // ---- Part 1: decompose one asset's price history into horizon bands.
  const std::vector<double> prices = panel.AssetSeries(0);
  std::vector<double> normalized(prices.size());
  for (size_t t = 0; t < prices.size(); ++t) {
    normalized[t] = prices[t] / prices[0] - 1.0;
  }
  const int64_t bands = 3;
  const auto split = signal::SplitHorizonBands(normalized, bands);
  std::printf("DWT decomposition of asset 0 (%zu days, %lld bands):\n",
              prices.size(), static_cast<long long>(bands));
  const char* names[] = {"long-term ", "middle    ", "short-term"};
  for (int64_t b = 0; b < bands; ++b) {
    std::printf("  band %lld (%s): roughness=%.5f  "
                "(higher = faster oscillation)\n",
                static_cast<long long>(b), names[b], Roughness(split[b]));
  }
  // Bands reconstruct the original signal exactly.
  double max_err = 0.0;
  for (size_t t = 0; t < normalized.size(); ++t) {
    double total = 0.0;
    for (const auto& band : split) total += band[t];
    max_err = std::max(max_err, std::fabs(total - normalized[t]));
  }
  std::printf("  reconstruction error (sum of bands vs original): %.2e\n",
              max_err);

  // ---- Part 2: train a 3-policy trader and inspect per-policy styles.
  core::CrossInsightConfig cfg;
  cfg.num_policies = 3;
  cfg.window = 24;
  cfg.train_steps = 120;
  cfg.seed = 5;
  core::CrossInsightTrader trader(panel.num_assets(), cfg);
  std::printf("\nTraining 3 horizon policies + cross-insight policy...\n");
  trader.Train(panel);

  const auto fused = env::RunTestBacktest(trader, panel, cfg.window);
  std::printf("\n%-22s %s\n", "fused (cross-insight):",
              fused.metrics.ToString().c_str());
  for (int64_t k = 0; k < cfg.num_policies; ++k) {
    auto agent = trader.MakePolicyAgent(k);
    const auto result = env::RunTestBacktest(*agent, panel, cfg.window);
    // Band 0 is the longest horizon.
    std::printf("%-22s %s\n",
                (std::string("policy (") + names[k] + "):").c_str(),
                result.metrics.ToString().c_str());
  }
  return 0;
}
