// Baseline comparison: runs every online portfolio-selection strategy in
// the library over a simulated market and prints a Table-III-style summary.
// Useful as a template for evaluating custom strategies: implement
// env::TradingAgent (or olps::OlpsStrategy) and add it to the list.
//
// Build & run:   cmake --build build && ./build/examples/baseline_comparison
#include <cstdio>
#include <memory>
#include <vector>

#include "env/backtest.h"
#include "market/simulator.h"
#include "olps/strategies.h"

int main() {
  using namespace cit;

  market::MarketConfig cfg;
  cfg.name = "demo";
  cfg.num_assets = 12;
  cfg.train_days = 400;
  cfg.test_days = 250;
  cfg.seed = 23;
  const market::PricePanel panel = market::SimulateMarket(cfg);

  std::vector<std::unique_ptr<env::TradingAgent>> agents;
  agents.push_back(std::make_unique<olps::Olmar>());
  agents.push_back(std::make_unique<olps::Crp>());
  agents.push_back(std::make_unique<olps::Ons>());
  agents.push_back(std::make_unique<olps::Up>());
  agents.push_back(std::make_unique<olps::Eg>());
  agents.push_back(std::make_unique<olps::Pamr>());
  agents.push_back(std::make_unique<olps::Rmr>());
  agents.push_back(std::make_unique<olps::Anticor>());
  agents.push_back(std::make_unique<olps::BuyAndHold>());

  std::printf("Online-learning baselines on the '%s' test split "
              "(%lld assets, %lld test days)\n",
              cfg.name.c_str(), static_cast<long long>(panel.num_assets()),
              static_cast<long long>(cfg.test_days));
  std::printf("%-10s %8s %8s %8s %8s\n", "Model", "AR", "SR", "CR", "MDD");
  for (auto& agent : agents) {
    const auto result = env::RunTestBacktest(*agent, panel, /*window=*/16);
    std::printf("%-10s %8.3f %8.3f %8.3f %8.3f\n",
                result.agent_name.c_str(),
                result.metrics.accumulative_return,
                result.metrics.sharpe_ratio, result.metrics.calmar_ratio,
                result.metrics.max_drawdown);
  }
  return 0;
}
