// Model persistence: train a cross-insight trader once, save the weights,
// and later reload them into a fresh process for inference-only trading —
// the deployment workflow for a trained model. Then the crash-recovery
// workflow: a run that checkpoints periodically is "killed" mid-training,
// and a fresh process resumes from the checkpoint — reproducing the
// uninterrupted learning curve exactly.
//
// Build & run:   cmake --build build && ./build/examples/model_persistence
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/trader.h"
#include "env/backtest.h"
#include "market/simulator.h"

int main() {
  using namespace cit;

  market::MarketConfig mcfg;
  mcfg.num_assets = 8;
  mcfg.train_days = 500;
  mcfg.test_days = 150;
  mcfg.seed = 19;
  const market::PricePanel panel = market::SimulateMarket(mcfg);

  core::CrossInsightConfig cfg;
  cfg.num_policies = 3;
  cfg.window = 16;
  cfg.train_steps = 100;
  cfg.seed = 2;

  const std::string path = "/tmp/cit_trained_model.bin";
  {
    // "Training process": train and persist.
    core::CrossInsightTrader trader(panel.num_assets(), cfg);
    std::printf("Training (%lld steps)...\n",
                static_cast<long long>(cfg.train_steps));
    trader.Train(panel);
    if (Status s = trader.SaveModel(path); !s.ok()) {
      std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const auto result = env::RunTestBacktest(trader, panel, cfg.window);
    std::printf("trained process:  %s\n", result.metrics.ToString().c_str());
  }
  {
    // "Deployment process": same architecture, weights from disk, no
    // training. Backtests identically to the trained instance.
    core::CrossInsightTrader trader(panel.num_assets(), cfg);
    if (Status s = trader.LoadModel(path); !s.ok()) {
      std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const auto result = env::RunTestBacktest(trader, panel, cfg.window);
    std::printf("reloaded process: %s\n", result.metrics.ToString().c_str());
  }
  std::printf("Weights file: %s\n", path.c_str());

  // ---- Crash recovery: interrupt-and-resume ---------------------------------
  // A long training run writes its full state (weights, Adam moments,
  // progress) every `checkpoint_every` updates. The write is atomic
  // (tmp + fsync + rename), so a crash at any instant leaves either the
  // previous checkpoint or the new one — never a torn file.
  core::CrossInsightConfig rcfg = cfg;
  rcfg.train_steps = 40;
  const std::string ckpt = "/tmp/cit_training_state.ckpt";

  std::printf("\nUninterrupted reference run (%lld steps)...\n",
              static_cast<long long>(rcfg.train_steps));
  std::vector<double> full_curve;
  {
    core::CrossInsightTrader trader(panel.num_assets(), rcfg);
    full_curve = trader.Train(panel);
  }
  {
    // This run checkpoints at update 25; the state it leaves on disk is
    // exactly what a crash right after that update would leave behind.
    // Discarding the instance here stands in for the kill.
    core::CrossInsightConfig ccfg = rcfg;
    ccfg.checkpoint_every = 25;
    ccfg.checkpoint_path = ckpt;
    std::printf("Run with checkpointing every %lld updates (\"killed\" "
                "after the write)...\n",
                static_cast<long long>(ccfg.checkpoint_every));
    core::CrossInsightTrader trader(panel.num_assets(), ccfg);
    trader.Train(panel);
  }
  {
    // A fresh process picks up at update 25 and finishes the run. The
    // counter-split RNG streams make the continuation bitwise identical
    // to the uninterrupted run, at any CIT_NUM_THREADS.
    core::CrossInsightConfig scfg = rcfg;
    scfg.resume_from = ckpt;
    std::printf("Fresh process resuming from %s...\n", ckpt.c_str());
    core::CrossInsightTrader trader(panel.num_assets(), scfg);
    const std::vector<double> resumed_curve = trader.Train(panel);
    bool identical = resumed_curve.size() == full_curve.size();
    for (size_t i = 0; identical && i < full_curve.size(); ++i) {
      identical = resumed_curve[i] == full_curve[i];
    }
    std::printf("resumed learning curve bitwise identical to "
                "uninterrupted run: %s\n", identical ? "yes" : "NO");
    if (!identical) return 1;
  }
  return 0;
}
