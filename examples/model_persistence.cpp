// Model persistence: train a cross-insight trader once, save the weights,
// and later reload them into a fresh process for inference-only trading —
// the deployment workflow for a trained model.
//
// Build & run:   cmake --build build && ./build/examples/model_persistence
#include <cstdio>

#include "core/trader.h"
#include "env/backtest.h"
#include "market/simulator.h"

int main() {
  using namespace cit;

  market::MarketConfig mcfg;
  mcfg.num_assets = 8;
  mcfg.train_days = 500;
  mcfg.test_days = 150;
  mcfg.seed = 19;
  const market::PricePanel panel = market::SimulateMarket(mcfg);

  core::CrossInsightConfig cfg;
  cfg.num_policies = 3;
  cfg.window = 16;
  cfg.train_steps = 100;
  cfg.seed = 2;

  const std::string path = "/tmp/cit_trained_model.bin";
  {
    // "Training process": train and persist.
    core::CrossInsightTrader trader(panel.num_assets(), cfg);
    std::printf("Training (%lld steps)...\n",
                static_cast<long long>(cfg.train_steps));
    trader.Train(panel);
    if (Status s = trader.SaveModel(path); !s.ok()) {
      std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const auto result = env::RunTestBacktest(trader, panel, cfg.window);
    std::printf("trained process:  %s\n", result.metrics.ToString().c_str());
  }
  {
    // "Deployment process": same architecture, weights from disk, no
    // training. Backtests identically to the trained instance.
    core::CrossInsightTrader trader(panel.num_assets(), cfg);
    if (Status s = trader.LoadModel(path); !s.ok()) {
      std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const auto result = env::RunTestBacktest(trader, panel, cfg.window);
    std::printf("reloaded process: %s\n", result.metrics.ToString().c_str());
  }
  std::printf("Weights file: %s\n", path.c_str());
  return 0;
}
