// Quickstart: simulate a market, train a small cross-insight trader, and
// compare its test-split performance against CRP and buy-and-hold.
//
// Build & run:   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/trader.h"
#include "env/backtest.h"
#include "market/simulator.h"
#include "olps/strategies.h"

int main() {
  using namespace cit;

  // 1. Market data. SimulateMarket generates a regime-switching multi-
  //    horizon market; swap in market::LoadPanelCsv(path) for real data.
  market::MarketConfig market_cfg;
  market_cfg.name = "demo";
  market_cfg.num_assets = 10;
  market_cfg.train_days = 600;
  market_cfg.test_days = 200;
  market_cfg.seed = 42;
  const market::PricePanel panel = market::SimulateMarket(market_cfg);
  std::printf("Simulated %lld assets x %lld days (train end at day %lld)\n",
              static_cast<long long>(panel.num_assets()),
              static_cast<long long>(panel.num_days()),
              static_cast<long long>(panel.train_end()));

  // 2. Configure and train the cross-insight trader: 3 horizon-specific
  //    policies over DWT bands, fused by the cross-insight policy, with
  //    the counterfactual credit mechanism.
  core::CrossInsightConfig cfg;
  cfg.num_policies = 3;
  cfg.window = 24;
  cfg.train_steps = 150;
  cfg.seed = 7;
  core::CrossInsightTrader trader(panel.num_assets(), cfg);
  std::printf("Training cross-insight trader (%lld policies, %lld steps)"
              "...\n",
              static_cast<long long>(cfg.num_policies),
              static_cast<long long>(cfg.train_steps));
  const auto curve = trader.Train(panel);
  std::printf("Training reward: first checkpoint %.4f -> last %.4f\n",
              curve.front(), curve.back());

  // 3. Backtest on the held-out test split and compare with baselines.
  const auto ours = env::RunTestBacktest(trader, panel, cfg.window);
  olps::Crp crp;
  const auto crp_result = env::RunTestBacktest(crp, panel, cfg.window);
  olps::BuyAndHold market_agent;
  const auto market_result =
      env::RunTestBacktest(market_agent, panel, cfg.window);

  std::printf("\n%-18s %s\n", "CrossInsight:", ours.metrics.ToString().c_str());
  std::printf("%-18s %s\n", "CRP:", crp_result.metrics.ToString().c_str());
  std::printf("%-18s %s\n", "Market (B&H):",
              market_result.metrics.ToString().c_str());
  return 0;
}
