// citd — the serving daemon around DecideWeights (DESIGN.md §10).
//
// Binds a local Unix socket and serves the line protocol: price-window in,
// portfolio weights out, plus ping/stats/swap. Each worker thread owns its
// own model replica; "swap <weights-file>" hot-swaps checkpoints without
// dropping a connection.
//
// Build & run:
//   cmake --build build
//   ./build/examples/citd --socket /tmp/citd.sock --workers 2
//       [--model /tmp/cit_trained_model.bin]
// Talk to it (any line-oriented client works):
//   printf 'ping\n' | socat - UNIX-CONNECT:/tmp/citd.sock
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "core/config.h"
#include "core/trader.h"
#include "serve/cit_model.h"
#include "serve/server.h"

namespace {

volatile std::sig_atomic_t g_signalled = 0;
void OnSignal(int) { g_signalled = 1; }

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [options]\n"
               "  --socket PATH        Unix socket to bind (required)\n"
               "  --model PATH         weights file to serve (default: fresh"
               " seeded init)\n"
               "  --save-init PATH     write the initial weights to PATH and"
               " continue\n"
               "  --assets N           assets per decision (default 8)\n"
               "  --window N           price-window length (default 16)\n"
               "  --policies N         horizon policies (default 3)\n"
               "  --seed N             init seed (default 1)\n"
               "  --workers N          worker threads = model replicas"
               " (default 2)\n"
               "  --deadline-ms N      per-request stall deadline"
               " (default 2000)\n"
               "  --idle-timeout-ms N  idle connection drop, 0 = never"
               " (default 30000)\n"
               "  --max-line N         request line byte cap"
               " (default 1048576)\n"
               "  --batch-window-us N  how long a partial batch of decide\n"
               "                       requests may wait for more arrivals;"
               " a lone\n"
               "                       request never waits (default 0:"
               " coalesce only\n"
               "                       requests already pending together)\n"
               "  --max-batch N        decide requests per batched forward;"
               " 1\n"
               "                       disables batching (default 8)\n",
               argv0);
}

bool ParseInt(const char* s, long long* out) {
  char* end = nullptr;
  *out = std::strtoll(s, &end, 10);
  return end != s && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cit;

  serve::ServerConfig scfg;
  scfg.workers = 2;
  scfg.enable_telemetry = true;  // the stats endpoint should count things

  long long assets = 8, window = 16, policies = 3, seed = 1;
  std::string model_path, save_init;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* val = i + 1 < argc ? argv[i + 1] : nullptr;
    long long n = 0;
    if (flag == "--socket" && val) {
      scfg.socket_path = val;
      ++i;
    } else if (flag == "--model" && val) {
      model_path = val;
      ++i;
    } else if (flag == "--save-init" && val) {
      save_init = val;
      ++i;
    } else if (flag == "--assets" && val && ParseInt(val, &assets)) {
      ++i;
    } else if (flag == "--window" && val && ParseInt(val, &window)) {
      ++i;
    } else if (flag == "--policies" && val && ParseInt(val, &policies)) {
      ++i;
    } else if (flag == "--seed" && val && ParseInt(val, &seed)) {
      ++i;
    } else if (flag == "--workers" && val && ParseInt(val, &n)) {
      scfg.workers = static_cast<int>(n);
      ++i;
    } else if (flag == "--deadline-ms" && val && ParseInt(val, &n)) {
      scfg.request_deadline_ms = n;
      ++i;
    } else if (flag == "--idle-timeout-ms" && val && ParseInt(val, &n)) {
      scfg.idle_timeout_ms = n;
      ++i;
    } else if (flag == "--max-line" && val && ParseInt(val, &n)) {
      scfg.max_line = static_cast<size_t>(n);
      ++i;
    } else if (flag == "--batch-window-us" && val && ParseInt(val, &n)) {
      scfg.batch_window_us = n;
      ++i;
    } else if (flag == "--max-batch" && val && ParseInt(val, &n)) {
      scfg.max_batch = static_cast<int>(n);
      ++i;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (scfg.socket_path.empty() || assets < 1 || window < 2 || policies < 0 ||
      scfg.workers < 1) {
    Usage(argv[0]);
    return 2;
  }

  core::CrossInsightConfig cfg;
  cfg.num_policies = policies;
  cfg.window = window;
  cfg.seed = static_cast<uint64_t>(seed);

  // --save-init: persist the (deterministic, seeded) initial weights so a
  // smoke test has a second valid checkpoint to hot-swap to.
  if (!save_init.empty()) {
    core::CrossInsightTrader init(assets, cfg);
    if (Status s = init.SaveModel(save_init); !s.ok()) {
      std::fprintf(stderr, "citd: --save-init: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // The daemon must not die because a client vanished mid-response; all
  // sends use MSG_NOSIGNAL, this covers any stray write path.
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  serve::Server server(scfg,
                       serve::MakeCitModelFactory(assets, cfg, model_path));
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "citd: start: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("citd: serving %lld assets (window %lld, %d workers) on %s\n",
              assets, window, scfg.workers, scfg.socket_path.c_str());
  std::fflush(stdout);

  while (!g_signalled) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("citd: shutting down\n");
  server.Stop();
  return 0;
}
