// Custom market data: shows the CSV round trip used to plug real market
// data into the library. Generates a panel, saves it as CSV (the layout a
// Yahoo-Finance export can be massaged into), reloads it, and trains on
// the loaded copy.
//
// Build & run:   cmake --build build && ./build/examples/custom_market
#include <cstdio>

#include "core/trader.h"
#include "env/backtest.h"
#include "market/csv.h"
#include "market/simulator.h"

int main() {
  using namespace cit;

  // 1. Produce a CSV (stand-in for your own data file). Format:
  //    #train_end=<N>
  //    day,TICKER1,TICKER2,...
  //    0,100.0,55.2,...
  market::MarketConfig cfg;
  cfg.num_assets = 6;
  cfg.train_days = 500;
  cfg.test_days = 150;
  cfg.seed = 3;
  const market::PricePanel generated = market::SimulateMarket(cfg);
  const std::string path = "/tmp/cit_custom_market.csv";
  if (Status s = market::SavePanelCsv(generated, path); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("Wrote %s\n", path.c_str());

  // 2. Load it back. LoadPanelCsv validates prices and shape and returns
  //    Result<PricePanel> instead of throwing.
  auto loaded = market::LoadPanelCsv(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  market::PricePanel panel = std::move(loaded).value();
  std::printf("Loaded %lld assets x %lld days, train_end=%lld\n",
              static_cast<long long>(panel.num_assets()),
              static_cast<long long>(panel.num_days()),
              static_cast<long long>(panel.train_end()));

  // 3. Train and evaluate on the loaded data.
  core::CrossInsightConfig trader_cfg;
  trader_cfg.num_policies = 2;
  trader_cfg.window = 16;
  trader_cfg.train_steps = 80;
  core::CrossInsightTrader trader(panel.num_assets(), trader_cfg);
  trader.Train(panel);
  const auto result =
      env::RunTestBacktest(trader, panel, trader_cfg.window);
  std::printf("Cross-insight trader on loaded data: %s\n",
              result.metrics.ToString().c_str());
  return 0;
}
