// sweep — cross-scenario robustness sweep over the OLPS baselines
// (DESIGN.md §11). Fans (scenario × agent × seed) across the thread pool
// and writes a cit.sweep.v1 JSON report; the report is bitwise identical
// for any CIT_NUM_THREADS.
//
// Build & run:
//   cmake --build build
//   ./build/examples/sweep --out /tmp/sweep.json
//   ./build/examples/sweep --scenarios 'baseline;flash_crash:depth=0.4' \
//       --agents OLMAR,CRP,Market --seeds 7,8 --out -
//
// Scenario syntax: ';'-separated stacks, each stack a '|'-separated list
// of presets "name:key=value,key=value" ("baseline" or "" = untouched
// panel). Presets: flash_crash, correlation_breakdown, liquidity_hole,
// halt, regime_flip (parameter table in README.md).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "env/sweep.h"
#include "market/simulator.h"
#include "market/source.h"
#include "olps/strategies.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --scenarios LIST  ';'-separated scenario stacks (default: baseline"
      " + one preset each)\n"
      "  --agents LIST     ','-separated agent names (default: OLMAR,CRP,"
      "BestStock,Market)\n"
      "                    known: OLMAR,CRP,EG,PAMR,RMR,BestStock,Market\n"
      "  --seeds LIST      ','-separated market seeds (default: 7)\n"
      "  --assets N        simulated assets (default 8)\n"
      "  --train-days N    training days (default 300)\n"
      "  --test-days N     test days (default 120)\n"
      "  --window N        decision window (default 16)\n"
      "  --out PATH        report path, '-' = stdout (default -)\n",
      argv0);
}

std::vector<std::string> SplitList(const std::string& text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::unique_ptr<cit::env::TradingAgent> MakeAgent(const std::string& name) {
  using namespace cit::olps;
  if (name == "OLMAR") return std::make_unique<Olmar>();
  if (name == "CRP") return std::make_unique<Crp>();
  if (name == "EG") return std::make_unique<Eg>();
  if (name == "PAMR") return std::make_unique<Pamr>();
  if (name == "RMR") return std::make_unique<Rmr>();
  if (name == "BestStock") return std::make_unique<BestStock>();
  if (name == "Market") return std::make_unique<BuyAndHold>();
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cit;

  std::string scenarios_text =
      "baseline;flash_crash;correlation_breakdown;liquidity_hole;halt;"
      "regime_flip";
  std::string agents_text = "OLMAR,CRP,BestStock,Market";
  std::string seeds_text = "7";
  std::string out_path = "-";
  int64_t assets = 8, train_days = 300, test_days = 120, window = 16;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--scenarios") == 0) {
      scenarios_text = next();
    } else if (std::strcmp(argv[i], "--agents") == 0) {
      agents_text = next();
    } else if (std::strcmp(argv[i], "--seeds") == 0) {
      seeds_text = next();
    } else if (std::strcmp(argv[i], "--assets") == 0) {
      assets = std::atoll(next());
    } else if (std::strcmp(argv[i], "--train-days") == 0) {
      train_days = std::atoll(next());
    } else if (std::strcmp(argv[i], "--test-days") == 0) {
      test_days = std::atoll(next());
    } else if (std::strcmp(argv[i], "--window") == 0) {
      window = std::atoll(next());
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next();
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  std::vector<std::string> stacks;
  for (std::string& s : SplitList(scenarios_text, ';')) {
    stacks.push_back(s == "baseline" ? "" : s);
  }
  std::vector<env::SweepAgentSpec> agents;
  for (const std::string& name : SplitList(agents_text, ',')) {
    if (MakeAgent(name) == nullptr) {
      std::fprintf(stderr, "unknown agent '%s'\n", name.c_str());
      return 2;
    }
    agents.push_back({name, [name](uint64_t) { return MakeAgent(name); }});
  }
  env::SweepConfig config;
  config.window = window;
  config.seeds.clear();
  for (const std::string& s : SplitList(seeds_text, ',')) {
    config.seeds.push_back(
        static_cast<uint64_t>(std::strtoull(s.c_str(), nullptr, 10)));
  }
  if (config.seeds.empty()) config.seeds.push_back(7);

  // All cells share one simulated base market (the first seed); the seed
  // dimension feeds the agent factories (a no-op for the deterministic
  // OLPS agents, but the report still carries one cell per seed).
  market::MarketConfig cfg;
  cfg.name = "sweep-demo";
  cfg.num_assets = assets;
  cfg.train_days = train_days;
  cfg.test_days = test_days;
  cfg.seed = config.seeds.front();
  market::InMemorySource base(market::SimulateMarket(cfg));

  auto report = env::RunSweep(&base, stacks, agents, config);
  if (!report.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 report.status().message().c_str());
    return 1;
  }
  const std::string json = std::move(report).value().ToJson();

  if (out_path == "-") {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return 0;
}
